// Property tests for the spatially indexed CNT tracer (cnt::GeometryIndex):
//
//  * indexed ≡ naive — the indexed tracer must emit an effect list
//    IDENTICAL to the naive all-pairs reference, over fuzzed random
//    geometries (stacked bands, shapes in/straddling/far from bands) and
//    random polylines, and over every standard-family cell with random
//    tubes. This is the contract that lets monte_carlo swap tracers
//    without changing a single result bit.
//  * serial ≡ threaded — monte_carlo's full result, including the
//    per-trial histograms, is bit-identical at 1, 2 and 8 threads
//    (counter-seeded trial streams + commuting integer tallies).
//  * index structure — band y-bin mask and interval queries agree with
//    brute force on fuzzed geometries.
//  * histogram invariants — bucket sums equal the trial count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cnt/analyzer.hpp"
#include "cnt/geometry_index.hpp"
#include "layout/cells.hpp"
#include "util/rng.hpp"

namespace cnfet {
namespace {

bool effects_equal(const std::vector<cnt::StrayEffect>& a,
                   const std::vector<cnt::StrayEffect>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].a != b[i].a || a[i].b != b[i].b) return false;
    if (a[i].chain.size() != b[i].chain.size()) return false;
    for (std::size_t j = 0; j < a[i].chain.size(); ++j) {
      if (a[i].chain[j].gate_input != b[i].chain[j].gate_input ||
          a[i].chain[j].type != b[i].chain[j].type) {
        return false;
      }
    }
  }
  return true;
}

geom::Coord coord(util::Xoshiro256& rng, geom::Coord lo, geom::Coord hi) {
  return lo + static_cast<geom::Coord>(rng.uniform() *
                                       static_cast<double>(hi - lo));
}

/// Random geometry: 1-6 vertically stacked disjoint bands, each with
/// shapes fully inside, straddling the band edge, and far away (the far
/// ones exercise the index's binning filter: they must not change the
/// traced effects).
layout::CellGeometry fuzz_geometry(util::Xoshiro256& rng) {
  layout::CellGeometry geo;
  const int num_bands = 1 + static_cast<int>(rng.uniform() * 6);
  const geom::Coord width = 4000 + coord(rng, 0, 30000);
  geom::Coord y = coord(rng, -5000, 5000);
  for (int b = 0; b < num_bands; ++b) {
    y += coord(rng, 200, 900);  // gap keeps bands pairwise disjoint
    const geom::Coord h = coord(rng, 400, 1500);
    geo.bands.push_back({geom::Rect({0, y}, {width, y + h}),
                         rng.uniform() < 0.5 ? netlist::FetType::kN
                                             : netlist::FetType::kP});
    const int shapes = static_cast<int>(rng.uniform() * 10);
    for (int s = 0; s < shapes; ++s) {
      const geom::Coord x0 = coord(rng, -2000, width + 2000);
      const geom::Coord w = coord(rng, 100, 1200);
      // dy slides the shape from inside the band to fully outside it.
      const geom::Coord dy = coord(rng, -h - 800, h + 800);
      const geom::Rect rect({x0, y + dy}, {x0 + w, y + dy + h + 200});
      const double kind = rng.uniform();
      if (kind < 0.5) {
        geo.contacts.push_back(
            {static_cast<netlist::NetId>(1 + s % 5), rect});
      } else if (kind < 0.85) {
        geo.gates.push_back({s % 4, rect});
      } else {
        geo.etches.push_back(rect);
      }
    }
    y += h;
  }
  return geo;
}

std::vector<geom::DVec2> fuzz_polyline(util::Xoshiro256& rng,
                                       const layout::CellGeometry& geo) {
  geom::Coord y_lo = 0, y_hi = 0;
  geom::Coord x_hi = 4000;
  if (!geo.bands.empty()) {
    y_lo = geo.bands.front().rect.lo().y;
    y_hi = geo.bands.back().rect.hi().y;
    x_hi = geo.bands.front().rect.hi().x;
  }
  const int points = 2 + static_cast<int>(rng.uniform() * 3);
  std::vector<geom::DVec2> poly;
  for (int p = 0; p < points; ++p) {
    poly.push_back(
        {rng.uniform(-4000.0, static_cast<double>(x_hi) + 4000.0),
         rng.uniform(static_cast<double>(y_lo) - 4000.0,
                     static_cast<double>(y_hi) + 4000.0)});
  }
  return poly;
}

TEST(CntIndex, IndexedTracerMatchesNaiveOnFuzzedGeometries) {
  util::Xoshiro256 rng(0xC0FFEE);
  for (int round = 0; round < 150; ++round) {
    const auto geo = fuzz_geometry(rng);
    const cnt::GeometryIndex index(geo);
    for (int tube = 0; tube < 40; ++tube) {
      const auto poly = fuzz_polyline(rng, geo);
      const auto naive = cnt::trace_tube_naive(geo, poly);
      const auto indexed = cnt::trace_tube(index, poly);
      ASSERT_TRUE(effects_equal(naive, indexed))
          << "round " << round << " tube " << tube << ": naive "
          << naive.size() << " effects, indexed " << indexed.size();
    }
  }
}

TEST(CntIndex, IndexedTracerMatchesNaiveOnStandardCells) {
  util::Xoshiro256 rng(42);
  for (const auto& spec : layout::standard_cell_family()) {
    const auto built = layout::build_cell(spec);
    const auto geo = built.layout.geometry();
    const cnt::GeometryIndex index(geo);
    const auto box = built.layout.bbox();
    for (int tube = 0; tube < 300; ++tube) {
      std::vector<geom::DVec2> poly;
      const int points = 2 + static_cast<int>(rng.uniform() * 3);
      for (int p = 0; p < points; ++p) {
        poly.push_back({rng.uniform(static_cast<double>(box.lo().x) - 3000,
                                    static_cast<double>(box.hi().x) + 3000),
                        rng.uniform(static_cast<double>(box.lo().y) - 3000,
                                    static_cast<double>(box.hi().y) + 3000)});
      }
      const auto naive = cnt::trace_tube_naive(geo, poly);
      const auto indexed = cnt::trace_tube(index, poly);
      ASSERT_TRUE(effects_equal(naive, indexed)) << spec.name;
    }
  }
}

TEST(CntIndex, BandMaskMatchesBruteForce) {
  util::Xoshiro256 rng(7);
  for (int round = 0; round < 200; ++round) {
    const auto geo = fuzz_geometry(rng);
    const cnt::GeometryIndex index(geo);
    for (int q = 0; q < 50; ++q) {
      const double a = rng.uniform(-10000.0, 30000.0);
      const double b = rng.uniform(-10000.0, 30000.0);
      const double y_lo = std::min(a, b);
      const double y_hi = std::max(a, b);
      const std::uint64_t mask = index.bands_in_y(y_lo, y_hi);
      for (std::size_t i = 0; i < geo.bands.size(); ++i) {
        const auto& rect = geo.bands[i].rect;
        const bool expect =
            static_cast<double>(rect.lo().y) - cnt::kQueryPad <= y_hi &&
            static_cast<double>(rect.hi().y) + cnt::kQueryPad >= y_lo;
        EXPECT_EQ((mask >> i) & 1, expect ? 1u : 0u) << "band " << i;
      }
    }
  }
}

TEST(CntIndex, IntervalQueriesMatchBruteForce) {
  util::Xoshiro256 rng(11);
  for (int round = 0; round < 100; ++round) {
    const auto geo = fuzz_geometry(rng);
    const cnt::GeometryIndex index(geo);
    for (const auto& band : index.bands()) {
      for (int q = 0; q < 30; ++q) {
        const double a = rng.uniform(-5000.0, 40000.0);
        const double b = rng.uniform(-5000.0, 40000.0);
        const double x_lo = std::min(a, b);
        const double x_hi = std::max(a, b);
        int brute = 0;
        for (const auto& e : band.contacts.entries()) {
          if (static_cast<double>(e.rect.lo().x) - cnt::kQueryPad <= x_hi &&
              static_cast<double>(e.rect.hi().x) + cnt::kQueryPad >= x_lo) {
            ++brute;
          }
        }
        EXPECT_EQ(band.contacts.count_overlapping_x(x_lo, x_hi), brute);
        int visited = 0;
        band.contacts.for_overlapping_x(
            x_lo, x_hi, [&](const cnt::IntervalIndex::Entry&) { ++visited; });
        EXPECT_EQ(visited, brute);
      }
    }
  }
}

bool results_identical(const cnt::MonteCarloResult& a,
                       const cnt::MonteCarloResult& b) {
  return a.trials == b.trials && a.failing_trials == b.failing_trials &&
         a.tubes_sampled == b.tubes_sampled &&
         a.stray_shorts == b.stray_shorts &&
         a.stray_chains == b.stray_chains &&
         a.shorts_histogram == b.shorts_histogram &&
         a.chains_histogram == b.chains_histogram;
}

TEST(CntIndex, MonteCarloIndexedMatchesNaive) {
  const auto built = layout::build_cell(layout::find_cell_spec("NAND2"));
  const auto indexed =
      cnt::monte_carlo(built.layout, built.netlist, built.function,
                       cnt::TubeModel{}, 3000, 99, 1,
                       cnt::TracerKind::kIndexed);
  const auto naive =
      cnt::monte_carlo(built.layout, built.netlist, built.function,
                       cnt::TubeModel{}, 3000, 99, 1, cnt::TracerKind::kNaive);
  EXPECT_TRUE(results_identical(indexed, naive));
}

TEST(CntIndex, MonteCarloThreadCountInvariant) {
  const auto built = layout::build_cell(layout::find_cell_spec("AOI21"));
  const auto serial =
      cnt::monte_carlo(built.layout, built.netlist, built.function,
                       cnt::TubeModel{}, 4000, 5, 1);
  for (int threads : {2, 8}) {
    const auto parallel =
        cnt::monte_carlo(built.layout, built.netlist, built.function,
                         cnt::TubeModel{}, 4000, 5, threads);
    EXPECT_TRUE(results_identical(serial, parallel))
        << threads << " threads";
  }
}

TEST(CntIndex, HistogramsPartitionTrials) {
  const auto built = layout::build_cell(layout::find_cell_spec("NAND3"));
  const auto result =
      cnt::monte_carlo(built.layout, built.netlist, built.function,
                       cnt::TubeModel{}, 2500, 3, 1);
  ASSERT_EQ(result.shorts_histogram.size(),
            static_cast<std::size_t>(cnt::MonteCarloResult::kHistogramBuckets));
  ASSERT_EQ(result.chains_histogram.size(),
            static_cast<std::size_t>(cnt::MonteCarloResult::kHistogramBuckets));
  std::int64_t shorts_sum = 0, chains_sum = 0;
  for (const auto b : result.shorts_histogram) shorts_sum += b;
  for (const auto b : result.chains_histogram) chains_sum += b;
  EXPECT_EQ(shorts_sum, result.trials);
  EXPECT_EQ(chains_sum, result.trials);
}

}  // namespace
}  // namespace cnfet
