// The at-scale verification tier. The ScaleTier suite runs everywhere
// (fast, sanitizer-friendly sizes); the Scale10k suite is the 10k-gate
// stress tier, registered as a separate ctest entry under the `scale`
// label so sanitizer runs can exclude it (-LE scale).
#include <gtest/gtest.h>

#include "api/flow.hpp"
#include "api/serialize.hpp"
#include "core/design_kit.hpp"
#include "gen/gen.hpp"
#include "opt/opt.hpp"
#include "sta/timing_graph.hpp"
#include "util/json.hpp"

namespace cnfet {
namespace {

const liberty::Library& cnfet_library() {
  static const core::DesignKit kit(layout::Tech::kCnfet65);
  return kit.library();
}

gen::Generated random_dag(int gates, int num_inputs, std::uint64_t seed) {
  gen::GenOptions options;
  options.family = gen::Family::kRandomDag;
  options.target_gates = gates;
  options.num_inputs = num_inputs;
  options.seed = seed;
  return gen::generate(cnfet_library(), options);
}

std::string netlist_bytes(const flow::GateNetlist& netlist) {
  return util::json::dump(api::to_json(netlist));
}

std::vector<bool> po_values(const flow::GateNetlist& netlist,
                            const std::vector<bool>& net_values) {
  std::vector<bool> out;
  out.reserve(netlist.outputs().size());
  for (const int po : netlist.outputs()) {
    out.push_back(net_values[static_cast<std::size_t>(po)]);
  }
  return out;
}

// --- ScaleTier: fast differential and regression cases -------------------

TEST(ScaleTier, MapCostObjectivesComputeTheSameFunction) {
  const auto& lib = cnfet_library();
  gen::GenOptions options;
  options.family = gen::Family::kCarryLookaheadAdder;
  options.width = 6;
  const auto design = gen::generate(lib, options);
  const auto specs = gen::to_expressions(design.netlist);
  std::vector<std::string> input_names;
  for (const int pi : design.netlist.inputs()) {
    input_names.push_back(design.netlist.net_name(pi));
  }

  flow::MapOptions by_count;
  by_count.cost = flow::MapCost::kGateCount;
  flow::MapOptions by_delay;
  by_delay.cost = flow::MapCost::kDelay;
  const auto count_map =
      flow::map_expressions(specs, input_names, lib, by_count);
  const auto delay_map =
      flow::map_expressions(specs, input_names, lib, by_delay);
  const int n = static_cast<int>(input_names.size());
  ASSERT_TRUE(flow::verify_mapping(count_map, specs, n));
  ASSERT_TRUE(flow::verify_mapping(delay_map, specs, n));

  for (const auto& vec :
       gen::sample_vectors(input_names.size(), 64, 21)) {
    const auto expect = design.oracle(vec);
    EXPECT_EQ(po_values(count_map.netlist, count_map.netlist.simulate(vec)),
              expect);
    EXPECT_EQ(po_values(delay_map.netlist, delay_map.netlist.simulate(vec)),
              expect);
  }
}

TEST(ScaleTier, OptimizePreservesFunctionOnSampledVectors) {
  const auto& lib = cnfet_library();
  auto design = random_dag(300, 12, 4);
  const auto vectors =
      gen::sample_vectors(design.netlist.inputs().size(), 64, 5);
  std::vector<std::vector<bool>> before;
  for (const auto& vec : vectors) {
    before.push_back(po_values(design.netlist, design.netlist.simulate(vec)));
  }

  opt::OptOptions options;
  options.num_threads = 2;
  const auto stats = opt::optimize(design.netlist, lib, options);
  EXPECT_TRUE(stats.function_verified);  // 12 inputs: exhaustive recheck ran
  for (std::size_t i = 0; i < vectors.size(); ++i) {
    EXPECT_EQ(po_values(design.netlist, design.netlist.simulate(vectors[i])),
              before[i])
        << "vector " << i;
  }
}

TEST(ScaleTier, ShardedSizingIsBitIdenticalToSerial) {
  const auto& lib = cnfet_library();
  gen::GenOptions gopt;
  gopt.family = gen::Family::kCarryLookaheadAdder;
  gopt.width = 8;
  auto serial = gen::generate(lib, gopt);
  auto sharded = gen::generate(lib, gopt);

  opt::OptOptions one;
  one.num_threads = 1;
  opt::OptOptions four;
  four.num_threads = 4;
  sta::StaResult serial_timing, sharded_timing;
  (void)opt::optimize(serial.netlist, lib, one, &serial_timing);
  (void)opt::optimize(sharded.netlist, lib, four, &sharded_timing);

  EXPECT_EQ(netlist_bytes(serial.netlist), netlist_bytes(sharded.netlist));
  EXPECT_EQ(serial_timing.worst_arrival, sharded_timing.worst_arrival);
  EXPECT_EQ(serial_timing.critical_path, sharded_timing.critical_path);
}

// Regression: simulate(uint64) on a 65-input design used to shift by >= 64
// (UB); it must refuse, and the vector form must carry on.
TEST(ScaleTier, PackedSimulateRefusesBeyond64Inputs) {
  const auto& lib = cnfet_library();
  gen::GenOptions options;
  options.family = gen::Family::kRippleCarryAdder;
  options.width = 32;  // 65 primary inputs: A, B and CIN
  const auto design = gen::generate(lib, options);
  ASSERT_EQ(design.netlist.inputs().size(), 65U);
  EXPECT_THROW((void)design.netlist.simulate(std::uint64_t{0}), util::Error);
  for (const auto& vec : gen::sample_vectors(65, 8, 6)) {
    EXPECT_EQ(po_values(design.netlist, design.netlist.simulate(vec)),
              design.oracle(vec));
  }
}

// Regression: net_load()'s primary-output term is tracked eagerly per net;
// replace_output must move it (the cached count once went stale).
TEST(ScaleTier, NetLoadFollowsReplacedOutput) {
  const auto& lib = cnfet_library();
  const auto* inv = &lib.find("INV_1X");
  const double wire_cap = 0.1e-15, output_load = 2e-15;

  auto build = [&](bool moved) {
    flow::GateNetlist netlist;
    const int a = netlist.add_net("A");
    netlist.mark_input(a);
    const int n1 = netlist.add_net("n1");
    const int n2 = netlist.add_net("n2");
    netlist.add_gate(flow::Gate{inv, {a}, n1, "u1"});
    netlist.add_gate(flow::Gate{inv, {n1}, n2, "u2"});
    netlist.mark_output(moved ? n2 : n1);
    return netlist;
  };

  auto mutated = build(false);
  mutated.replace_output(1, 2);  // n1 -> n2
  const auto reference = build(true);
  for (int net = 0; net < mutated.num_nets(); ++net) {
    EXPECT_EQ(mutated.net_load(net, wire_cap, output_load),
              reference.net_load(net, wire_cap, output_load))
        << "net " << net;
  }
}

// --- Scale10k: the 10k-gate stress tier (ctest label `scale`) ------------

TEST(Scale10k, FullFlowExportsDrcClean) {
  auto design = random_dag(10000, 64, 1);
  ASSERT_EQ(design.netlist.gates().size(), 10000U);
  auto made = api::Flow::from_netlist(std::move(design.netlist));
  ASSERT_TRUE(made.ok()) << made.error().message;
  auto& flow = made.value();
  const auto reached = flow.run();
  ASSERT_TRUE(reached.ok()) << reached.error().message;
  EXPECT_EQ(flow.stage(), api::Stage::kExported);
  ASSERT_NE(flow.signed_off(), nullptr);
  EXPECT_TRUE(flow.signed_off()->clean());
  ASSERT_NE(flow.exported(), nullptr);
  EXPECT_GT(flow.placed()->placement.placed_area_lambda2, 0.0);
}

TEST(Scale10k, IncrementalRetimeMatchesFullRebuild) {
  const auto& lib = cnfet_library();
  auto design = random_dag(10000, 64, 2);
  sta::TimingGraph graph(design.netlist);
  const double baseline = graph.worst_arrival();
  EXPECT_GT(baseline, 0.0);

  // Resize a spread of gates across the depth range and re-time
  // incrementally after each edit.
  int edits = 0;
  for (int gate = 100; gate < 10000 && edits < 24; gate += 401) {
    const auto& current = *design.netlist.gates()[gate].cell;
    for (const auto& option :
         lib.drives_of(liberty::Library::base_name(current.name))) {
      if (option.cell == &current) continue;
      design.netlist.resize_gate(gate, option.cell);
      graph.on_gate_replaced(gate);
      ++edits;
      break;
    }
    (void)graph.worst_arrival();
  }
  ASSERT_GT(edits, 0);
  EXPECT_TRUE(graph.matches_full_rebuild());
  EXPECT_GT(graph.stats().incremental_retimes, 0U);
}

TEST(Scale10k, SaveResumeRoundTripsByteIdentically) {
  auto design = random_dag(10000, 64, 3);
  auto made = api::Flow::from_netlist(std::move(design.netlist));
  ASSERT_TRUE(made.ok()) << made.error().message;
  auto& flow = made.value();
  ASSERT_TRUE(flow.run(api::Stage::kPlaced).ok());

  const auto saved = flow.session_json();
  ASSERT_TRUE(saved.ok()) << saved.error().message;
  const auto first = util::json::dump(saved.value());

  auto resumed = api::Flow::resume_json(saved.value(), "<test>");
  ASSERT_TRUE(resumed.ok()) << resumed.error().message;
  const auto again = resumed.value().session_json();
  ASSERT_TRUE(again.ok()) << again.error().message;
  EXPECT_EQ(first, util::json::dump(again.value()));

  // The resumed session also reports identical metrics.
  EXPECT_EQ(flow.metrics().placed_area_lambda2,
            resumed.value().metrics().placed_area_lambda2);
  EXPECT_EQ(flow.metrics().worst_arrival_s,
            resumed.value().metrics().worst_arrival_s);
}

}  // namespace
}  // namespace cnfet
