// Accuracy-equivalence and determinism contract of the fast transient
// engine: the adaptive + analytic-Jacobian solve path must agree with the
// seed fixed-step finite-difference engine (delays within 1%, supply
// energies within 2%) on the paper's circuits, analytic device derivatives
// must match finite differences, and parallel characterization must be
// bit-identical to serial.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "device/models.hpp"
#include "layout/cells.hpp"
#include "liberty/library.hpp"
#include "sim/transient.hpp"
#include "util/error.hpp"
#include "util/heap_count.hpp"

namespace cnfet::sim {
namespace {

TransientOptions seed_engine() {
  TransientOptions o;
  o.tstep = 0.25e-12;
  o.tstop = 400e-12;
  o.adaptive = false;
  o.analytic_jacobian = false;
  return o;
}

TransientOptions fast_engine() {
  TransientOptions o;
  o.tstep = 0.25e-12;
  o.tstop = 400e-12;
  return o;  // adaptive + analytic are the defaults
}

void expect_close(double fast, double reference, double rel_tol,
                  const std::string& what) {
  EXPECT_NEAR(fast, reference, rel_tol * std::fabs(reference))
      << what << ": fast " << fast << " vs reference " << reference;
}

/// CMOS NAND2 at transistor level (series NFETs doubled in width).
void add_nand2(Circuit& ckt, int a, int b, int out, int vdd_node,
               const std::string& tag) {
  const auto nfet = device::mos_device(device::MosParams::nmos65(), 0.26);
  const auto pfet = device::mos_device(device::MosParams::pmos65(), 0.182);
  const int mid = ckt.add_node("mid_" + tag);
  ckt.add_fet(Polarity::kP, a, out, vdd_node, pfet);
  ckt.add_fet(Polarity::kP, b, out, vdd_node, pfet);
  ckt.add_fet(Polarity::kN, a, out, mid, nfet);
  ckt.add_fet(Polarity::kN, b, mid, Circuit::kGround, nfet);
  ckt.add_capacitor(a, Circuit::kGround, nfet.c_gate + pfet.c_gate);
  ckt.add_capacitor(b, Circuit::kGround, nfet.c_gate + pfet.c_gate);
  ckt.add_capacitor(out, Circuit::kGround,
                    nfet.c_drain / 2 + 2 * pfet.c_drain);
  ckt.add_capacitor(mid, Circuit::kGround, nfet.c_drain);
}

TEST(FastEngine, AdaptiveMatchesFixedOnInverter) {
  Circuit ckt;
  const int vdd = ckt.add_node("vdd");
  const int in = ckt.add_node("in");
  const int out = ckt.add_node("out");
  const int src = ckt.add_vsource(vdd, Circuit::kGround, Pwl(1.0));
  (void)ckt.add_vsource(
      in, Circuit::kGround,
      Pwl::pulse(0.0, 1.0, 50e-12, 10e-12, 250e-12, 10e-12));
  ckt.add_inverter(device::cmos_inverter(), in, out, vdd);
  ckt.add_capacitor(out, Circuit::kGround, 2e-15);

  const Transient fixed(ckt, seed_engine());
  const Transient fast(ckt, fast_engine());
  for (const bool rising : {true, false}) {
    const double after = rising ? 40e-12 : 240e-12;
    const double d_fixed =
        propagation_delay(fixed.v(in), fixed.v(out), 1.0, rising, after);
    const double d_fast =
        propagation_delay(fast.v(in), fast.v(out), 1.0, rising, after);
    expect_close(d_fast, d_fixed, 0.01,
                 rising ? "INV rise delay" : "INV fall delay");
  }
  expect_close(fast.source_energy(src, 0, 400e-12),
               fixed.source_energy(src, 0, 400e-12), 0.02, "INV energy");
}

TEST(FastEngine, AdaptiveMatchesFixedOnNand2) {
  Circuit ckt;
  const int vdd = ckt.add_node("vdd");
  const int a = ckt.add_node("a");
  const int b = ckt.add_node("b");
  const int out = ckt.add_node("out");
  const int src = ckt.add_vsource(vdd, Circuit::kGround, Pwl(1.0));
  (void)ckt.add_vsource(
      a, Circuit::kGround,
      Pwl::pulse(0.0, 1.0, 50e-12, 10e-12, 250e-12, 10e-12));
  (void)ckt.add_vsource(b, Circuit::kGround, Pwl(1.0));  // sensitized
  add_nand2(ckt, a, b, out, vdd, "g0");
  ckt.add_capacitor(out, Circuit::kGround, 4e-15);

  const Transient fixed(ckt, seed_engine());
  const Transient fast(ckt, fast_engine());
  for (const bool rising : {true, false}) {
    const double after = rising ? 40e-12 : 240e-12;
    const double d_fixed =
        propagation_delay(fixed.v(a), fixed.v(out), 1.0, rising, after);
    const double d_fast =
        propagation_delay(fast.v(a), fast.v(out), 1.0, rising, after);
    expect_close(d_fast, d_fixed, 0.01,
                 rising ? "NAND2 rise delay" : "NAND2 fall delay");
  }
  expect_close(fast.source_energy(src, 0, 400e-12),
               fixed.source_energy(src, 0, 400e-12), 0.02, "NAND2 energy");
}

TEST(FastEngine, AdaptiveMatchesFixedOnNandFullAdder) {
  // The paper's full adder as nine NAND2s. b = 1 and cin = 0 sensitize
  // both outputs to a: sum = !a, cout = a.
  Circuit ckt;
  const int vdd = ckt.add_node("vdd");
  const int a = ckt.add_node("a");
  const int b = ckt.add_node("b");
  const int cin = ckt.add_node("cin");
  const int src = ckt.add_vsource(vdd, Circuit::kGround, Pwl(1.0));
  (void)ckt.add_vsource(
      a, Circuit::kGround,
      Pwl::pulse(0.0, 1.0, 50e-12, 10e-12, 250e-12, 10e-12));
  (void)ckt.add_vsource(b, Circuit::kGround, Pwl(1.0));
  (void)ckt.add_vsource(cin, Circuit::kGround, Pwl(0.0));
  const int n1 = ckt.add_node("n1");
  const int n2 = ckt.add_node("n2");
  const int n3 = ckt.add_node("n3");
  const int n4 = ckt.add_node("n4");
  const int n5 = ckt.add_node("n5");
  const int n6 = ckt.add_node("n6");
  const int n7 = ckt.add_node("n7");
  const int sum = ckt.add_node("sum");
  const int cout = ckt.add_node("cout");
  add_nand2(ckt, a, b, n1, vdd, "g1");
  add_nand2(ckt, a, n1, n2, vdd, "g2");
  add_nand2(ckt, b, n1, n3, vdd, "g3");
  add_nand2(ckt, n2, n3, n4, vdd, "g4");
  add_nand2(ckt, n4, cin, n5, vdd, "g5");
  add_nand2(ckt, n4, n5, n6, vdd, "g6");
  add_nand2(ckt, cin, n5, n7, vdd, "g7");
  add_nand2(ckt, n6, n7, sum, vdd, "g8");
  add_nand2(ckt, n5, n1, cout, vdd, "g9");
  ckt.add_capacitor(sum, Circuit::kGround, 2e-15);
  ckt.add_capacitor(cout, Circuit::kGround, 2e-15);

  const Transient fixed(ckt, seed_engine());
  const Transient fast(ckt, fast_engine());
  // sum = !a is an inverting path; cout = a is non-inverting, so measure
  // its 50%-crossing in the same direction as the input edge.
  auto delay_to = [](const Transient& tran, int in_node, int out_node,
                     bool in_rising, bool out_rising, double after) {
    const double t_in = tran.v(in_node).cross(0.5, in_rising, after);
    EXPECT_GE(t_in, 0.0);
    const double t_out = tran.v(out_node).cross(0.5, out_rising, t_in);
    EXPECT_GE(t_out, 0.0);
    return t_out - t_in;
  };
  for (const int observed : {sum, cout}) {
    const bool inverting = observed == sum;
    for (const bool rising : {true, false}) {
      const double after = rising ? 40e-12 : 240e-12;
      const bool out_rising = inverting ? !rising : rising;
      const double d_fixed =
          delay_to(fixed, a, observed, rising, out_rising, after);
      const double d_fast =
          delay_to(fast, a, observed, rising, out_rising, after);
      expect_close(d_fast, d_fixed, 0.01,
                   std::string("full-adder delay to ") +
                       (inverting ? "sum" : "cout"));
    }
  }
  expect_close(fast.source_energy(src, 0, 400e-12),
               fixed.source_energy(src, 0, 400e-12), 0.02,
               "full-adder energy");
}

TEST(FastEngine, AnalyticJacobianMatchesFiniteDifference) {
  const Circuit::Fet devices[] = {
      {Polarity::kN, 0, 0, 0,
       device::mos_device(device::MosParams::nmos65(), 0.13)},
      {Polarity::kP, 0, 0, 0,
       device::mos_device(device::MosParams::pmos65(), 0.182)},
      {Polarity::kN, 0, 0, 0,
       device::cnfet_device(device::CnfetParams{}, 13, 65.0)},
      {Polarity::kP, 0, 0, 0,
       device::cnfet_device(device::CnfetParams{}, 13, 65.0)},
  };
  constexpr double dx = 1e-7;
  for (const auto& fet : devices) {
    ASSERT_TRUE(fet.model.ids_grad != nullptr);
    // Grid values chosen so no mirrored vgs lands on a device threshold
    // (0.30 / 0.32), where the model has a genuine C0 kink and one-sided
    // finite differences disagree with the analytic one-sided derivative.
    for (const double vg : {0.0, 0.25, 0.5, 0.8, 1.0}) {
      for (const double vd : {0.05, 0.35, 0.72, 1.0}) {
        for (const double vs : {0.0, 0.15, 0.6}) {
          if (std::fabs(vd - vs) < 0.02) continue;  // conduction-flip kink
          const auto g = fet_current_grad(fet, vg, vd, vs);
          EXPECT_DOUBLE_EQ(g.i, fet_current(fet, vg, vd, vs));
          const double fd_g = (fet_current(fet, vg + dx, vd, vs) -
                               fet_current(fet, vg - dx, vd, vs)) /
                              (2 * dx);
          const double fd_d = (fet_current(fet, vg, vd + dx, vs) -
                               fet_current(fet, vg, vd - dx, vs)) /
                              (2 * dx);
          const double fd_s = (fet_current(fet, vg, vd, vs + dx) -
                               fet_current(fet, vg, vd, vs - dx)) /
                              (2 * dx);
          const double tol = 1e-3 * std::max({std::fabs(fd_g), std::fabs(fd_d),
                                              std::fabs(fd_s), 1e-6});
          EXPECT_NEAR(g.di_dvg, fd_g, tol)
              << "vg=" << vg << " vd=" << vd << " vs=" << vs;
          EXPECT_NEAR(g.di_dvd, fd_d, tol)
              << "vg=" << vg << " vd=" << vd << " vs=" << vs;
          EXPECT_NEAR(g.di_dvs, fd_s, tol)
              << "vg=" << vg << " vd=" << vd << " vs=" << vs;
        }
      }
    }
  }
}

TEST(FastEngine, RecordNodesRestrictsWaveforms) {
  Circuit ckt;
  const int a = ckt.add_node("a");
  const int b = ckt.add_node("b");
  (void)ckt.add_vsource(a, Circuit::kGround,
                        Pwl::pulse(0.0, 1.0, 10e-12, 1e-12, 400e-12, 1e-12));
  ckt.add_resistor(a, b, 1e3);
  ckt.add_capacitor(b, Circuit::kGround, 10e-15);
  TransientOptions options;
  options.tstep = 0.1e-12;
  options.tstop = 50e-12;
  options.record_nodes = {b};
  const Transient tran(ckt, options);
  EXPECT_GT(tran.v(b).size(), 0u);
  EXPECT_THROW((void)tran.v(a), util::Error);
  EXPECT_GT(tran.source_current(0).size(), 0u);  // sources always recorded
}

TEST(SimScratch, WaveformBuffersRoundTripThroughThePool) {
  // A scratch-backed Transient moves its sample buffers out of the
  // scratch pool and its destructor moves them back, so a second run
  // reuses the SAME allocations: same data pointer, same capacity.
  Circuit ckt;
  const int a = ckt.add_node("a");
  const int b = ckt.add_node("b");
  (void)ckt.add_vsource(a, Circuit::kGround,
                        Pwl::pulse(0.0, 1.0, 10e-12, 1e-12, 400e-12, 1e-12));
  ckt.add_resistor(a, b, 1e3);
  ckt.add_capacitor(b, Circuit::kGround, 10e-15);
  TransientOptions options;
  options.tstep = 0.1e-12;
  options.tstop = 50e-12;

  SimScratch scratch;
  const double* wave_data = nullptr;
  std::size_t wave_capacity = 0;
  std::vector<double> first_samples;
  for (int run = 0; run < 3; ++run) {
    const Transient tran(ckt, options, &scratch);
    const Waveform& w = tran.v(b);
    ASSERT_GT(w.size(), 0u);
    if (run == 0) {
      wave_data = w.data();
      wave_capacity = w.capacity();
      first_samples.assign(w.data(), w.data() + w.size());
    } else {
      EXPECT_EQ(w.data(), wave_data) << "run " << run;
      EXPECT_EQ(w.capacity(), wave_capacity) << "run " << run;
      ASSERT_EQ(w.size(), first_samples.size()) << "run " << run;
      for (std::size_t i = 0; i < first_samples.size(); ++i) {
        ASSERT_EQ(w.data()[i], first_samples[i]) << "run " << run;
      }
    }
  }  // each destructor reclaims the buffers into `scratch`
}

TEST(SimScratch, ScratchBackedRunMatchesPlainRunBitwise) {
  Circuit ckt;
  const int vdd = ckt.add_node("vdd");
  const int in = ckt.add_node("in");
  const int out = ckt.add_node("out");
  const int src = ckt.add_vsource(vdd, Circuit::kGround, Pwl(1.0));
  (void)ckt.add_vsource(
      in, Circuit::kGround,
      Pwl::pulse(0.0, 1.0, 50e-12, 10e-12, 250e-12, 10e-12));
  ckt.add_inverter(device::cmos_inverter(), in, out, vdd);
  ckt.add_capacitor(out, Circuit::kGround, 2e-15);
  const auto options = fast_engine();

  const Transient plain(ckt, options);
  SimScratch scratch;
  for (int run = 0; run < 2; ++run) {
    const Transient reused(ckt, options, &scratch);
    ASSERT_EQ(reused.v(out).size(), plain.v(out).size());
    for (std::size_t i = 0; i < plain.v(out).size(); ++i) {
      ASSERT_EQ(reused.v(out).data()[i], plain.v(out).data()[i]);
    }
    EXPECT_EQ(reused.source_energy(src, 0, 400e-12),
              plain.source_energy(src, 0, 400e-12));
  }
}

TEST(FastEngine, WaveformCrossHonoursAfterWithLateStart) {
  // Zig-zag: crossings of 0.5 rising at t = 0.5 and t = 2.5.
  const Waveform w(1.0, {0.0, 1.0, 0.0, 1.0});
  EXPECT_DOUBLE_EQ(w.cross(0.5, true, 0.0), 0.5);
  EXPECT_DOUBLE_EQ(w.cross(0.5, true, 1.5), 2.5);
  // `after` gates the sample endpoint (seed semantics): the interval
  // ending at t=3 still counts even though the interpolated time is 2.5.
  EXPECT_DOUBLE_EQ(w.cross(0.5, true, 2.6), 2.5);
  EXPECT_DOUBLE_EQ(w.cross(0.5, true, 3.5), -1.0);
  EXPECT_DOUBLE_EQ(w.cross(0.5, true, 50.0), -1.0);
}

}  // namespace
}  // namespace cnfet::sim

namespace cnfet::liberty {
namespace {

CharacterizeOptions engine_options(bool fast, int num_threads) {
  CharacterizeOptions o;
  o.transient.adaptive = fast;
  o.transient.analytic_jacobian = fast;
  o.num_threads = num_threads;
  return o;
}

TEST(FastEngine, MeasureArcFastMatchesSeedEngine) {
  const auto built = layout::build_cell(layout::find_cell_spec("NAND2"));
  const auto seed = engine_options(false, 1);
  const auto fast = engine_options(true, 1);
  double cycle_seed = 0.0;
  double cycle_fast = 0.0;
  for (const bool rising : {true, false}) {
    // Input 0 sensitized with input 1 high.
    const auto m_seed =
        measure_arc(built.netlist, 0, 0b10, rising, 20e-12, 6e-15, seed);
    const auto m_fast =
        measure_arc(built.netlist, 0, 0b10, rising, 20e-12, 6e-15, fast);
    EXPECT_NEAR(m_fast.delay, m_seed.delay, 0.01 * m_seed.delay);
    EXPECT_NEAR(m_fast.out_slew, m_seed.out_slew, 0.02 * m_seed.out_slew);
    cycle_seed += m_seed.energy;
    cycle_fast += m_fast.energy;
  }
  // Energy contract on the per-cycle total (rise + fall): the half-cycle
  // where the supply only feeds short-circuit current is ~1% of the total
  // and a relative bound on it alone would compare noise against noise.
  EXPECT_NEAR(cycle_fast, cycle_seed, 0.02 * std::fabs(cycle_seed));
}

TEST(FastEngine, ParallelCharacterizationBitStable) {
  const auto spec = layout::find_cell_spec("NAND2");
  const auto serial = characterize_cell(spec, 1.0, engine_options(true, 1));
  const auto parallel = characterize_cell(spec, 1.0, engine_options(true, 4));
  ASSERT_EQ(serial.arcs.size(), parallel.arcs.size());
  EXPECT_EQ(serial.name, parallel.name);
  EXPECT_EQ(serial.area_lambda2, parallel.area_lambda2);
  ASSERT_EQ(serial.input_cap.size(), parallel.input_cap.size());
  for (std::size_t i = 0; i < serial.input_cap.size(); ++i) {
    EXPECT_EQ(serial.input_cap[i], parallel.input_cap[i]);
  }
  for (std::size_t k = 0; k < serial.arcs.size(); ++k) {
    const auto& s = serial.arcs[k];
    const auto& p = parallel.arcs[k];
    EXPECT_EQ(s.input, p.input);
    EXPECT_EQ(s.out_rising, p.out_rising);
    for (std::size_t si = 0; si < s.delay.slews().size(); ++si) {
      for (std::size_t li = 0; li < s.delay.loads().size(); ++li) {
        // Bitwise equality: the parallel grid writes by index, so thread
        // count must not perturb a single ulp.
        EXPECT_EQ(s.delay.at(si, li), p.delay.at(si, li));
        EXPECT_EQ(s.out_slew.at(si, li), p.out_slew.at(si, li));
        EXPECT_EQ(s.energy.at(si, li), p.energy.at(si, li));
      }
    }
  }
}

TEST(ArcScratch, ScratchBackedMeasureArcBitIdenticalToUnbound) {
  // The reuse path rebuilds the same MNA system element-for-element, so
  // every grid point must agree with the historical build-per-call path
  // to the last ulp.
  const auto built = layout::build_cell(layout::find_cell_spec("NAND2"));
  const auto options = engine_options(true, 1);
  ArcScratch scratch;
  scratch.bind(built.netlist, options);
  for (const bool rising : {true, false}) {
    for (const double slew : {5e-12, 20e-12, 60e-12}) {
      for (const double load : {0.5e-15, 6e-15, 14e-15}) {
        const auto unbound =
            measure_arc(built.netlist, 0, 0b10, rising, slew, load, options);
        const auto reused = measure_arc(built.netlist, 0, 0b10, rising, slew,
                                        load, options, &scratch);
        EXPECT_EQ(reused.delay, unbound.delay)
            << "slew " << slew << " load " << load;
        EXPECT_EQ(reused.out_slew, unbound.out_slew)
            << "slew " << slew << " load " << load;
        EXPECT_EQ(reused.energy, unbound.energy)
            << "slew " << slew << " load " << load;
      }
    }
  }
}

TEST(ArcScratch, WorkspacePointersAndCapacitiesStableAcrossArcs) {
  // After one warm-up arc, further arcs must reuse the same Jacobian
  // storage — no reallocation, no capacity growth. This is the
  // regression test for the zero-steady-state-allocation contract's
  // mechanism (the contract itself is asserted by the allocation-counter
  // test below and the bench).
  const auto built = layout::build_cell(layout::find_cell_spec("NAND2"));
  const auto options = engine_options(true, 1);
  ArcScratch scratch;
  scratch.bind(built.netlist, options);
  (void)measure_arc(built.netlist, 0, 0b10, true, 20e-12, 6e-15, options,
                    &scratch);
  const double* jac = scratch.sim().solver().jacobian_data();
  const std::size_t jac_capacity = scratch.sim().solver().jacobian_capacity();
  ASSERT_NE(jac, nullptr);
  for (const bool rising : {true, false}) {
    for (const double slew : {5e-12, 60e-12}) {
      for (const double load : {0.5e-15, 14e-15}) {
        (void)measure_arc(built.netlist, 0, 0b10, rising, slew, load, options,
                          &scratch);
        EXPECT_EQ(scratch.sim().solver().jacobian_data(), jac);
        EXPECT_EQ(scratch.sim().solver().jacobian_capacity(), jac_capacity);
      }
    }
  }
}

TEST(ArcScratch, WarmArcPerformsZeroHeapAllocations) {
  if (!util::heap_counting_enabled()) {
    GTEST_SKIP() << "built without CNFET_COUNT_ALLOCS (sanitizer build)";
  }
  const auto built = layout::build_cell(layout::find_cell_spec("NAND2"));
  const auto options = engine_options(true, 1);
  ArcScratch scratch;
  scratch.bind(built.netlist, options);
  // Warm-up: grows every buffer to steady-state capacity.
  (void)measure_arc(built.netlist, 0, 0b10, true, 20e-12, 6e-15, options,
                    &scratch);
  for (const bool rising : {true, false}) {
    for (const double load : {0.5e-15, 6e-15, 14e-15}) {
      const std::uint64_t before = util::heap_allocs_this_thread();
      (void)measure_arc(built.netlist, 0, 0b10, rising, 20e-12, load, options,
                        &scratch);
      const std::uint64_t after = util::heap_allocs_this_thread();
      EXPECT_EQ(after - before, 0u)
          << "rising " << rising << " load " << load;
    }
  }
}

TEST(ArcScratch, EpochShortCircuitsRebindOnSameCell) {
  const auto built = layout::build_cell(layout::find_cell_spec("NAND2"));
  const auto options = engine_options(true, 1);
  ArcScratch scratch;
  scratch.bind(built.netlist, options, /*epoch=*/7);
  const auto first =
      measure_arc(built.netlist, 0, 0b10, true, 20e-12, 6e-15, options,
                  &scratch);
  if (util::heap_counting_enabled()) {
    // A matching epoch must be a no-op bind: zero allocations.
    const std::uint64_t before = util::heap_allocs_this_thread();
    scratch.bind(built.netlist, options, /*epoch=*/7);
    EXPECT_EQ(util::heap_allocs_this_thread() - before, 0u);
  } else {
    scratch.bind(built.netlist, options, /*epoch=*/7);
  }
  const auto again =
      measure_arc(built.netlist, 0, 0b10, true, 20e-12, 6e-15, options,
                  &scratch);
  EXPECT_EQ(again.delay, first.delay);
  EXPECT_EQ(again.out_slew, first.out_slew);
  EXPECT_EQ(again.energy, first.energy);
}

}  // namespace
}  // namespace cnfet::liberty
