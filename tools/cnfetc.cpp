// cnfetc — the shell driver for persistent compiler sessions.
//
// Every paper table is reproducible without writing C++:
//
//   cnfetc compile --cell NAND3 --tech cnfet65 --out sessions/nand3/
//   cnfetc batch jobs.json --threads 8 --report report.json
//   cnfetc resume sessions/nand3/ --to exported
//
// `compile` runs one api::Flow and checkpoints it (flow.json, plus
// design.gds once exported); `resume` reconstructs a checkpoint and
// continues it bit-identically; `batch` executes a serialized
// std::vector<FlowJob> (jobs.json) through api::run_batch and writes the
// serialized FlowReport (report.json). --cache-dir enables the
// LibraryCache disk tier so repeated invocations skip characterization.
//
// `serve` runs the cnfetd compile server in-process; `--server HOST:PORT`
// on compile/resume routes the flow to a running daemon (same GDS bytes
// and metrics as the local path, but against the daemon's warm library
// cache); `ping`/`stop` are the matching health check and graceful stop.
//
// Exit codes: 0 success, 1 a flow/job failed, 2 usage error.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/batch.hpp"
#include "api/serialize.hpp"
#include "layout/cells.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"

namespace {

using namespace cnfet;

void print_usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage:\n"
      "  cnfetc compile --cell NAME --out DIR [--tech cnfet65|cmos65]\n"
      "                 [--to STAGE] [--drive D] [--output-drive D]\n"
      "                 [--optimize] [--route] [--top NAME]\n"
      "                 [--cache-dir DIR] [--server HOST:PORT]\n"
      "  cnfetc gen --family rca|cla|mul|rand --out DIR [--width N]\n"
      "                 [--gates N] [--inputs N] [--seed S] [--drive D]\n"
      "                 [--tech cnfet65|cmos65] [--to STAGE] [--optimize]\n"
      "                 [--route] [--top NAME] [--cache-dir DIR]\n"
      "                 [--server HOST:PORT]\n"
      "  cnfetc batch JOBS.json [--threads N] [--report REPORT.json]\n"
      "                 [--fail-fast] [--cache-dir DIR]\n"
      "  cnfetc resume DIR [--to STAGE] [--route] [--cache-dir DIR]\n"
      "                 [--server HOST:PORT]\n"
      "  cnfetc jobs --out JOBS.json [--tech T]... [--to STAGE]\n"
      "  cnfetc monte-carlo --cell NAME [--trials N] [--seed S]\n"
      "                 [--threads N] [--histogram] [--naive] [--out FILE]\n"
      "                 [--server HOST:PORT]\n"
      "  cnfetc serve [--host H] [--port P] [--threads N]\n"
      "                 [--max-pending N] [--warm TECH]... [--no-warm]\n"
      "                 [--cache-dir DIR] [--port-file FILE]\n"
      "  cnfetc ping --server HOST:PORT\n"
      "  cnfetc stop --server HOST:PORT\n"
      "\n"
      "`jobs` writes the paper's Table-1 cell family as a jobs.json (one\n"
      "job per cell per --tech; default cnfet65) for `cnfetc batch`.\n"
      "STAGE is one of: created mapped timed optimized placed signed-off\n"
      "exported (default: exported).\n"
      "--route adds wire-aware signoff: the placed design is routed on the\n"
      "metal2/metal3 grid, Elmore RC is extracted and timed on top of the\n"
      "ideal model, the wire DRC deck runs, and the routed metal lands in\n"
      "design.gds (resume --route enables it on a session saved without).\n"
      "--cache-dir (or CNFET_LIBRARY_CACHE_DIR) keeps characterized\n"
      "libraries on disk as versioned JSON, so only the first run pays the\n"
      "characterization transients.\n"
      "`gen` builds a deterministic at-scale benchmark design (ripple-carry\n"
      "or carry-lookahead adder of --width bits, --width x --width array\n"
      "multiplier, or a seeded random DAG of --gates gates over --inputs\n"
      "primary inputs) and runs it through the flow like `compile` does —\n"
      "same session dir, same artifacts, locally or via --server.\n"
      "`monte-carlo` samples mispositioned-CNT trials against one paper\n"
      "cell (Figure 2's experiment at arbitrary scale): per-trial stray\n"
      "short/chain histograms with --histogram, the full serialized result\n"
      "as JSON with --out (byte-identical locally or via --server), and\n"
      "the all-pairs reference tracer with --naive (A/B check; slower).\n"
      "`serve` starts the compile daemon (cnfetd in-process): it warms the\n"
      "library cache for every --warm tech (default: all) and serves\n"
      "compile/resume/sta/monte_carlo/batch requests over a line-delimited\n"
      "JSON protocol until SIGINT/SIGTERM or `cnfetc stop`. With --server,\n"
      "compile and resume send the flow to a daemon instead of running it\n"
      "locally; the session dir they write (flow.json, design.gds) is\n"
      "byte-identical to the local path's.\n");
}

int usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "cnfetc: %s\n\n", error);
  print_usage(stderr);
  return 2;
}

/// Tiny flag cursor: --name value pairs plus boolean switches.
class Args {
 public:
  Args(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  /// Positional arguments are whatever never matched a flag lookup.
  [[nodiscard]] const std::vector<std::string>& raw() const { return args_; }

  [[nodiscard]] bool has_switch(const std::string& name) {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] == name) {
        consumed_[i] = true;
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] const std::string* value_of(const std::string& name) {
    for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == name) {
        consumed_[i] = true;
        consumed_[i + 1] = true;
        return &args_[i + 1];
      }
    }
    return nullptr;
  }

  /// Every value of a repeatable flag (`--tech cnfet65 --tech cmos65`).
  [[nodiscard]] std::vector<std::string> values_of(const std::string& name) {
    std::vector<std::string> values;
    for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == name) {
        consumed_[i] = true;
        consumed_[i + 1] = true;
        values.push_back(args_[i + 1]);
      }
    }
    return values;
  }

  /// First argument not consumed by a flag ("" when there is none).
  [[nodiscard]] std::string positional() const {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (consumed_.count(i) == 0 && args_[i].rfind("--", 0) != 0) {
        return args_[i];
      }
    }
    return {};
  }

  /// An unconsumed --flag nobody asked for (typo detection).
  [[nodiscard]] std::string unknown_flag() const {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (consumed_.count(i) == 0 && args_[i].rfind("--", 0) == 0) {
        return args_[i];
      }
    }
    return {};
  }

 private:
  std::vector<std::string> args_;
  std::map<std::size_t, bool> consumed_;
};

void apply_cache_dir(Args& args) {
  if (const auto* dir = args.value_of("--cache-dir")) {
    api::LibraryCache::global().set_cache_dir(*dir);
  }
}

/// stod/stoi without the uncaught-throw abort: a malformed numeric flag
/// is a usage error, not a SIGABRT.
bool parse_number(const std::string& text, double* out) {
  try {
    std::size_t used = 0;
    *out = std::stod(text, &used);
    return used == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_number(const std::string& text, int* out) {
  try {
    std::size_t used = 0;
    *out = std::stoi(text, &used);
    return used == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

/// Prints the disk-tier notices (loads, stores, fallbacks) once at exit.
void print_cache_notes() {
  const auto diags = api::LibraryCache::global().diagnostics();
  if (!diags.empty()) std::printf("%s", diags.to_string().c_str());
}

util::Result<api::Stage> target_stage(Args& args) {
  if (const auto* name = args.value_of("--to")) {
    return api::stage_from_string(*name);
  }
  return api::Stage::kExported;
}

/// Advances `flow` to `target`, saves the session under `dir` and writes
/// design.gds when the flow is exported. Shared by compile and resume.
int finish_flow(api::Flow& flow, api::Stage target, const std::string& dir) {
  const auto reached = flow.run(target);
  std::printf("%s", flow.diagnostics().to_string().c_str());
  const auto saved = flow.save(dir);
  if (!saved.ok()) {
    std::fprintf(stderr, "cnfetc: save failed: %s\n",
                 saved.error().to_string().c_str());
    return 1;
  }
  std::printf("session saved to %s\n", saved.value().c_str());
  if (flow.exported() != nullptr) {
    const auto gds_path =
        (std::filesystem::path(dir) / "design.gds").string();
    const auto written = flow.write_gds(gds_path);
    if (!written.ok()) {
      std::fprintf(stderr, "cnfetc: %s\n",
                   written.error().to_string().c_str());
      return 1;
    }
    std::printf("wrote %s\n", written.value().c_str());
  }
  const auto m = flow.metrics();
  std::printf("%s @ %s: stage %s, %d gates, delay %.3gps, "
              "area %.0f lambda^2, %d DRC violations\n",
              m.name.c_str(), layout::to_string(m.tech),
              api::to_string(m.stage), m.gates, m.worst_arrival_s * 1e12,
              m.placed_area_lambda2, m.drc_violations);
  if (m.routed) {
    std::printf("routed: %.0f lambda wire, %.3f fF wire cap, "
                "wire delay +%.3gps, %d wire DRC violations\n",
                m.total_wirelength, m.wire_cap_ff, m.wire_delay_ps,
                m.wire_drc_violations);
  }
  print_cache_notes();
  return reached.ok() ? 0 : 1;
}

/// Unpacks a daemon compile/resume response into the same session dir a
/// local finish_flow writes: flow.json (the artifact-wrapped session the
/// server shipped back), design.gds (decoded from gds_hex), and the same
/// one-line metrics summary. Exit codes match the local path.
int finish_served_flow(const util::json::Value& response,
                       const std::string& dir) {
  const auto diags = serve::response_diagnostics(response);
  std::printf("%s", diags.to_string().c_str());
  const util::json::Value* result = response.find("result");
  if (result == nullptr || !result->is_object()) {
    std::fprintf(stderr, "cnfetc: response carries no result object\n");
    return 1;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (const util::json::Value* session = result->find("session")) {
    const auto path = (std::filesystem::path(dir) / "flow.json").string();
    const auto saved = api::write_artifact(*session, "flow", path);
    if (!saved.ok()) {
      std::fprintf(stderr, "cnfetc: save failed: %s\n",
                   saved.error().to_string().c_str());
      return 1;
    }
    std::printf("session saved to %s\n", saved.value().c_str());
  }
  if (const util::json::Value* gds_hex = result->find("gds_hex")) {
    auto bytes = serve::from_hex(gds_hex->as_string());
    if (!bytes.ok()) {
      std::fprintf(stderr, "cnfetc: %s\n", bytes.error().to_string().c_str());
      return 1;
    }
    const auto path = (std::filesystem::path(dir) / "design.gds").string();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.value().data(),
              static_cast<std::streamsize>(bytes.value().size()));
    if (!out) {
      std::fprintf(stderr, "cnfetc: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  if (const util::json::Value* metrics = result->find("metrics")) {
    const auto m = api::flow_metrics_from_json(*metrics);
    std::printf("%s @ %s: stage %s, %d gates, delay %.3gps, "
                "area %.0f lambda^2, %d DRC violations\n",
                m.name.c_str(), layout::to_string(m.tech),
                api::to_string(m.stage), m.gates, m.worst_arrival_s * 1e12,
                m.placed_area_lambda2, m.drc_violations);
    if (m.routed) {
      std::printf("routed: %.0f lambda wire, %.3f fF wire cap, "
                  "wire delay +%.3gps, %d wire DRC violations\n",
                  m.total_wirelength, m.wire_cap_ff, m.wire_delay_ps,
                  m.wire_drc_violations);
    }
  }
  return response.get_bool("ok") ? 0 : 1;
}

/// One request against a daemon; transport and envelope faults exit 1.
int call_server(const std::string& endpoint, util::json::Value request,
                const std::string& session_dir) {
  auto client = serve::Client::connect(endpoint);
  if (!client.ok()) {
    std::fprintf(stderr, "cnfetc: %s\n", client.error().to_string().c_str());
    return 1;
  }
  auto response = client.value().call(request);
  if (!response.ok()) {
    std::fprintf(stderr, "cnfetc: %s\n", response.error().to_string().c_str());
    return 1;
  }
  return finish_served_flow(response.value(), session_dir);
}

int cmd_compile(Args& args) {
  apply_cache_dir(args);
  const auto* cell = args.value_of("--cell");
  const auto* out_dir = args.value_of("--out");
  if (cell == nullptr) return usage("compile requires --cell");
  if (out_dir == nullptr) return usage("compile requires --out");
  api::FlowOptions options;
  if (const auto* tech = args.value_of("--tech")) {
    auto parsed = api::tech_from_string(*tech);
    if (!parsed.ok()) return usage(parsed.error().message.c_str());
    options.tech = parsed.value();
  }
  if (const auto* drive = args.value_of("--drive")) {
    if (!parse_number(*drive, &options.drive)) {
      return usage(("--drive is not a number: " + *drive).c_str());
    }
  }
  if (const auto* drive = args.value_of("--output-drive")) {
    if (!parse_number(*drive, &options.output_drive)) {
      return usage(("--output-drive is not a number: " + *drive).c_str());
    }
  }
  if (args.has_switch("--optimize")) options.optimize = true;
  if (args.has_switch("--route")) options.route = true;
  if (const auto* top = args.value_of("--top")) options.top_name = *top;
  const auto target = target_stage(args);
  if (!target.ok()) return usage(target.error().message.c_str());
  const auto* server = args.value_of("--server");
  if (const auto flag = args.unknown_flag(); !flag.empty()) {
    return usage(("unknown flag " + flag).c_str());
  }
  if (server != nullptr) {
    api::FlowJob job;
    job.cell = *cell;
    job.options = options;
    job.target = target.value();
    auto request = serve::make_request(serve::RequestKind::kCompile);
    request.set("job", api::to_json(job));
    return call_server(*server, std::move(request), *out_dir);
  }
  auto flow = api::Flow::from_cell(*cell, options);
  if (!flow.ok()) {
    std::fprintf(stderr, "cnfetc: %s\n", flow.error().to_string().c_str());
    return 1;
  }
  return finish_flow(flow.value(), target.value(), *out_dir);
}

int cmd_gen(Args& args) {
  apply_cache_dir(args);
  const auto* family_name = args.value_of("--family");
  const auto* out_dir = args.value_of("--out");
  if (family_name == nullptr) return usage("gen requires --family");
  if (out_dir == nullptr) return usage("gen requires --out");
  gen::GenOptions gopt;
  const auto family = gen::family_from_string(*family_name);
  if (!family.ok()) return usage(family.error().message.c_str());
  gopt.family = family.value();
  if (const auto* width = args.value_of("--width")) {
    if (!parse_number(*width, &gopt.width) || gopt.width < 1) {
      return usage(("--width is not a positive integer: " + *width).c_str());
    }
  }
  if (const auto* gates = args.value_of("--gates")) {
    if (!parse_number(*gates, &gopt.target_gates) || gopt.target_gates < 1) {
      return usage(("--gates is not a positive integer: " + *gates).c_str());
    }
  }
  if (const auto* inputs = args.value_of("--inputs")) {
    if (!parse_number(*inputs, &gopt.num_inputs) || gopt.num_inputs < 1) {
      return usage(("--inputs is not a positive integer: " + *inputs).c_str());
    }
  }
  if (const auto* seed = args.value_of("--seed")) {
    try {
      std::size_t used = 0;
      gopt.seed = std::stoull(*seed, &used);
      if (used != seed->size()) throw std::invalid_argument(*seed);
    } catch (const std::exception&) {
      return usage(("--seed is not a uint64: " + *seed).c_str());
    }
  }
  api::FlowOptions options;
  if (const auto* tech = args.value_of("--tech")) {
    auto parsed = api::tech_from_string(*tech);
    if (!parsed.ok()) return usage(parsed.error().message.c_str());
    options.tech = parsed.value();
  }
  if (const auto* drive = args.value_of("--drive")) {
    if (!parse_number(*drive, &options.drive)) {
      return usage(("--drive is not a number: " + *drive).c_str());
    }
    gopt.drive = options.drive;
  }
  if (args.has_switch("--optimize")) options.optimize = true;
  if (args.has_switch("--route")) options.route = true;
  const auto* top = args.value_of("--top");
  if (top != nullptr) options.top_name = *top;
  const auto target = target_stage(args);
  if (!target.ok()) return usage(target.error().message.c_str());
  const auto* server = args.value_of("--server");
  if (const auto flag = args.unknown_flag(); !flag.empty()) {
    return usage(("unknown flag " + flag).c_str());
  }
  if (server != nullptr) {
    auto request = serve::make_request(serve::RequestKind::kGen);
    request.set("gen", api::to_json(gopt));
    request.set("options", api::to_json(options));
    request.set("target", api::to_string(target.value()));
    return call_server(*server, std::move(request), *out_dir);
  }
  auto library = api::LibraryCache::global().get(options.tech);
  if (!library.ok()) {
    std::fprintf(stderr, "cnfetc: %s\n", library.error().to_string().c_str());
    return 1;
  }
  options.library = library.value();
  gen::Generated design;
  try {
    design = gen::generate(*options.library, gopt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cnfetc: gen failed: %s\n", e.what());
    return 1;
  }
  if (top == nullptr) options.top_name = design.name;
  std::printf("generated %s: %zu gates, %zu inputs, %zu outputs\n",
              design.name.c_str(), design.netlist.gates().size(),
              design.netlist.inputs().size(),
              design.netlist.outputs().size());
  auto flow = api::Flow::from_netlist(std::move(design.netlist), options);
  if (!flow.ok()) {
    std::fprintf(stderr, "cnfetc: %s\n", flow.error().to_string().c_str());
    return 1;
  }
  return finish_flow(flow.value(), target.value(), *out_dir);
}

int cmd_resume(Args& args) {
  apply_cache_dir(args);
  // Flags first: positional() only knows a token is a flag *value* (not
  // the positional) once the flag lookups have consumed it.
  const auto target = target_stage(args);
  if (!target.ok()) return usage(target.error().message.c_str());
  const bool route = args.has_switch("--route");
  const auto* server = args.value_of("--server");
  if (const auto flag = args.unknown_flag(); !flag.empty()) {
    return usage(("unknown flag " + flag).c_str());
  }
  const std::string dir = args.positional();
  if (dir.empty()) return usage("resume requires a session directory");
  if (server != nullptr) {
    const auto path = (std::filesystem::path(dir) / "flow.json").string();
    auto session = api::read_artifact(path, "flow");
    if (!session.ok()) {
      std::fprintf(stderr, "cnfetc: %s\n",
                   session.error().to_string().c_str());
      return 1;
    }
    auto request = serve::make_request(serve::RequestKind::kResume);
    request.set("session", std::move(session).value());
    request.set("target", api::to_string(target.value()));
    if (route) request.set("route", true);
    return call_server(*server, std::move(request), dir);
  }
  auto flow = api::Flow::resume(dir);
  if (!flow.ok()) {
    std::fprintf(stderr, "cnfetc: %s\n", flow.error().to_string().c_str());
    return 1;
  }
  if (route) flow.value().set_route(true);
  std::printf("resumed %s at stage %s\n", flow.value().name().c_str(),
              api::to_string(flow.value().stage()));
  return finish_flow(flow.value(), target.value(), dir);
}

int cmd_jobs(Args& args) {
  const auto* out = args.value_of("--out");
  if (out == nullptr) return usage("jobs requires --out");
  std::vector<layout::Tech> techs;
  for (const auto& name : args.values_of("--tech")) {
    auto parsed = api::tech_from_string(name);
    if (!parsed.ok()) return usage(parsed.error().message.c_str());
    techs.push_back(parsed.value());
  }
  if (techs.empty()) techs.push_back(layout::Tech::kCnfet65);
  auto jobs = api::family_jobs(techs);
  if (const auto* target = args.value_of("--to")) {
    auto stage = api::stage_from_string(*target);
    if (!stage.ok()) return usage(stage.error().message.c_str());
    for (auto& job : jobs) job.target = stage.value();
  }
  if (const auto flag = args.unknown_flag(); !flag.empty()) {
    return usage(("unknown flag " + flag).c_str());
  }
  const auto saved = api::save_jobs(jobs, *out);
  if (!saved.ok()) {
    std::fprintf(stderr, "cnfetc: %s\n", saved.error().to_string().c_str());
    return 1;
  }
  std::printf("wrote %zu jobs to %s\n", jobs.size(), saved.value().c_str());
  return 0;
}

int cmd_batch(Args& args) {
  apply_cache_dir(args);
  // Flags first — see cmd_resume.
  api::BatchOptions options;
  if (const auto* threads = args.value_of("--threads")) {
    if (!parse_number(*threads, &options.num_threads)) {
      return usage(("--threads is not an integer: " + *threads).c_str());
    }
  }
  if (args.has_switch("--fail-fast")) options.fail_fast = true;
  const auto* report_path = args.value_of("--report");
  if (const auto flag = args.unknown_flag(); !flag.empty()) {
    return usage(("unknown flag " + flag).c_str());
  }
  const std::string jobs_path = args.positional();
  if (jobs_path.empty()) return usage("batch requires a jobs.json path");
  auto jobs = api::load_jobs(jobs_path);
  if (!jobs.ok()) {
    std::fprintf(stderr, "cnfetc: %s\n", jobs.error().to_string().c_str());
    return 1;
  }
  const auto report = api::run_batch(jobs.value(), options);
  std::printf("%s", report.to_string().c_str());
  if (report_path != nullptr) {
    const auto saved = api::save_report(report, *report_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "cnfetc: %s\n", saved.error().to_string().c_str());
      return 1;
    }
    std::printf("wrote %s\n", saved.value().c_str());
  }
  print_cache_notes();
  return report.num_failed() == 0 ? 0 : 1;
}

int cmd_monte_carlo(Args& args) {
  const auto* cell = args.value_of("--cell");
  if (cell == nullptr) return usage("monte-carlo requires --cell");
  int trials = 100000;
  if (const auto* t = args.value_of("--trials")) {
    if (!parse_number(*t, &trials) || trials <= 0) {
      return usage(("--trials is not a positive integer: " + *t).c_str());
    }
  }
  std::uint64_t seed = 1;
  if (const auto* s = args.value_of("--seed")) {
    try {
      std::size_t used = 0;
      seed = std::stoull(*s, &used);
      if (used != s->size()) throw std::invalid_argument(*s);
    } catch (const std::exception&) {
      return usage(("--seed is not a uint64: " + *s).c_str());
    }
  }
  int threads = 1;
  if (const auto* t = args.value_of("--threads")) {
    if (!parse_number(*t, &threads)) {
      return usage(("--threads is not an integer: " + *t).c_str());
    }
  }
  const bool histogram = args.has_switch("--histogram");
  const bool naive = args.has_switch("--naive");
  const auto* out_file = args.value_of("--out");
  const auto* server = args.value_of("--server");
  if (server != nullptr && naive) {
    return usage("--naive runs locally only (the daemon always uses the "
                 "indexed tracer)");
  }
  if (const auto flag = args.unknown_flag(); !flag.empty()) {
    return usage(("unknown flag " + flag).c_str());
  }

  // Either path produces the same serialized "mc" object for the same
  // (cell, trials, seed): util::json round-trips are exact, so --out
  // files from a local run and a served run compare byte-identical.
  util::json::Value mc_json;
  if (server != nullptr) {
    auto client = serve::Client::connect(*server);
    if (!client.ok()) {
      std::fprintf(stderr, "cnfetc: %s\n", client.error().to_string().c_str());
      return 1;
    }
    auto request = serve::make_request(serve::RequestKind::kMonteCarlo);
    request.set("cell", *cell);
    request.set("trials", trials);
    request.set("seed", static_cast<std::int64_t>(seed));
    request.set("threads", threads);
    auto response = client.value().call(request);
    if (!response.ok()) {
      std::fprintf(stderr, "cnfetc: %s\n",
                   response.error().to_string().c_str());
      return 1;
    }
    const auto diags = serve::response_diagnostics(response.value());
    std::printf("%s", diags.to_string().c_str());
    if (!response.value().get_bool("ok")) return 1;
    const util::json::Value* result = response.value().find("result");
    const util::json::Value* mc =
        result != nullptr ? result->find("mc") : nullptr;
    if (mc == nullptr) {
      std::fprintf(stderr, "cnfetc: response carries no mc result\n");
      return 1;
    }
    mc_json = *mc;
  } else {
    try {
      const auto built = layout::build_cell(layout::find_cell_spec(*cell));
      const auto mc = cnt::monte_carlo(
          built.layout, built.netlist, built.function, cnt::TubeModel{},
          trials, seed, threads,
          naive ? cnt::TracerKind::kNaive : cnt::TracerKind::kIndexed);
      mc_json = api::to_json(mc);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cnfetc: %s\n", e.what());
      return 1;
    }
  }

  const auto mc = api::monte_carlo_result_from_json(mc_json);
  std::printf("%s: %d trials, %d failing (yield %.6f), "
              "%lld tubes, %lld stray shorts, %lld stray chains\n",
              cell->c_str(), mc.trials, mc.failing_trials, mc.yield(),
              static_cast<long long>(mc.tubes_sampled),
              static_cast<long long>(mc.stray_shorts),
              static_cast<long long>(mc.stray_chains));
  if (histogram) {
    std::printf("per-trial effect-count histograms "
                "(last bucket saturates):\n");
    std::printf("%8s %12s %12s\n", "count", "shorts", "chains");
    for (std::size_t b = 0; b < mc.shorts_histogram.size(); ++b) {
      const long long shorts = mc.shorts_histogram[b];
      const long long chains =
          b < mc.chains_histogram.size() ? mc.chains_histogram[b] : 0;
      if (shorts == 0 && chains == 0) continue;
      std::printf("%7zu%s %12lld %12lld\n", b,
                  b + 1 == mc.shorts_histogram.size() ? "+" : " ", shorts,
                  chains);
    }
  }
  if (out_file != nullptr) {
    std::ofstream out(*out_file, std::ios::binary | std::ios::trunc);
    out << util::json::dump(mc_json, 2);
    if (!out.good()) {
      std::fprintf(stderr, "cnfetc: cannot write %s\n", out_file->c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_file->c_str());
  }
  return 0;
}

int cmd_serve(Args& args) {
  apply_cache_dir(args);
  serve::DaemonOptions options;
  // Warm every technology by default: the daemon's reason to exist is that
  // the first client request already finds a characterized library.
  options.server.warm = {layout::Tech::kCnfet65, layout::Tech::kCmos65};
  if (const auto* host = args.value_of("--host")) options.server.host = *host;
  if (const auto* port = args.value_of("--port")) {
    int value = 0;
    if (!parse_number(*port, &value) || value < 0 || value > 65535) {
      return usage(("--port is not a valid port: " + *port).c_str());
    }
    options.server.port = static_cast<std::uint16_t>(value);
  }
  if (const auto* threads = args.value_of("--threads")) {
    if (!parse_number(*threads, &options.server.num_threads)) {
      return usage(("--threads is not an integer: " + *threads).c_str());
    }
  }
  if (const auto* pending = args.value_of("--max-pending")) {
    if (!parse_number(*pending, &options.server.max_pending)) {
      return usage(("--max-pending is not an integer: " + *pending).c_str());
    }
  }
  const auto warm_names = args.values_of("--warm");
  if (!warm_names.empty()) {
    options.server.warm.clear();
    for (const auto& name : warm_names) {
      auto parsed = api::tech_from_string(name);
      if (!parsed.ok()) return usage(parsed.error().message.c_str());
      options.server.warm.push_back(parsed.value());
    }
  }
  if (args.has_switch("--no-warm")) options.server.warm.clear();
  if (const auto* file = args.value_of("--port-file")) {
    options.port_file = *file;
  }
  if (const auto flag = args.unknown_flag(); !flag.empty()) {
    return usage(("unknown flag " + flag).c_str());
  }
  return serve::run_daemon(options);
}

int cmd_ping(Args& args) {
  const auto* server = args.value_of("--server");
  if (server == nullptr) return usage("ping requires --server HOST:PORT");
  if (const auto flag = args.unknown_flag(); !flag.empty()) {
    return usage(("unknown flag " + flag).c_str());
  }
  auto client = serve::Client::connect(*server);
  if (!client.ok() || !client.value().ping()) {
    std::fprintf(stderr, "cnfetc: no pong from %s\n", server->c_str());
    return 1;
  }
  std::printf("pong from %s\n", server->c_str());
  return 0;
}

int cmd_stop(Args& args) {
  const auto* server = args.value_of("--server");
  if (server == nullptr) return usage("stop requires --server HOST:PORT");
  if (const auto flag = args.unknown_flag(); !flag.empty()) {
    return usage(("unknown flag " + flag).c_str());
  }
  auto client = serve::Client::connect(*server);
  if (!client.ok()) {
    std::fprintf(stderr, "cnfetc: %s\n", client.error().to_string().c_str());
    return 1;
  }
  auto response =
      client.value().call(serve::make_request(serve::RequestKind::kShutdown));
  if (!response.ok() || !response.value().get_bool("ok")) {
    std::fprintf(stderr, "cnfetc: shutdown request to %s failed\n",
                 server->c_str());
    return 1;
  }
  std::printf("%s is draining and will stop\n", server->c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  Args args(argc, argv, 2);
  if (command == "compile") return cmd_compile(args);
  if (command == "gen") return cmd_gen(args);
  if (command == "batch") return cmd_batch(args);
  if (command == "resume") return cmd_resume(args);
  if (command == "jobs") return cmd_jobs(args);
  if (command == "monte-carlo") return cmd_monte_carlo(args);
  if (command == "serve") return cmd_serve(args);
  if (command == "ping") return cmd_ping(args);
  if (command == "stop") return cmd_stop(args);
  if (command == "help" || command == "--help" || command == "-h") {
    print_usage(stdout);
    return 0;
  }
  return usage(("unknown command \"" + command + "\"").c_str());
}
