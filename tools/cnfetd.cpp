// cnfetd — the standalone compile-server daemon.
//
// One process holds one warm api::LibraryCache and serves
// compile/resume/sta/monte_carlo/batch requests over a line-delimited
// JSON protocol (see docs/api_guide.md, "The compile server"). Repeated
// `cnfetc compile` invocations each pay library characterization from a
// cold process; pointing them at a daemon with --server amortizes that
// cost down to a socket round-trip.
//
//   cnfetd --port 7455 --cache-dir ~/.cache/cnfet &
//   cnfetc ping --server 127.0.0.1:7455
//   cnfetc compile --cell NAND3 --out s/ --server 127.0.0.1:7455
//   cnfetc stop --server 127.0.0.1:7455
//
// SIGINT/SIGTERM (or a client "shutdown" request) drains in-flight flows
// before exiting; nothing accepted is dropped.
//
// Exit codes: 0 clean shutdown, 1 failed to start, 2 usage error.
#include <cstdio>
#include <string>

#include "api/library_cache.hpp"
#include "api/serialize.hpp"
#include "serve/daemon.hpp"

namespace {

using namespace cnfet;

void print_usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: cnfetd [--host H] [--port P] [--threads N]\n"
      "              [--max-pending N] [--max-connections N]\n"
      "              [--idle-timeout-ms MS] [--warm cnfet65|cmos65]...\n"
      "              [--no-warm] [--cache-dir DIR] [--port-file FILE]\n"
      "\n"
      "Defaults: 127.0.0.1, an ephemeral port (printed on startup, and\n"
      "written to --port-file when given), one pool worker per hardware\n"
      "thread, every technology library warmed before accepting.\n"
      "--cache-dir (or CNFET_LIBRARY_CACHE_DIR) backs the warm cache with\n"
      "the versioned on-disk library tier.\n");
}

bool parse_int(const std::string& text, int* out) {
  try {
    std::size_t used = 0;
    *out = std::stoi(text, &used);
    return used == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

int usage(const std::string& error) {
  std::fprintf(stderr, "cnfetd: %s\n\n", error.c_str());
  print_usage(stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  serve::DaemonOptions options;
  options.server.warm = {layout::Tech::kCnfet65, layout::Tech::kCmos65};
  bool warm_overridden = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) return nullptr;
      (void)flag;
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return 0;
    }
    const char* value = nullptr;
    if (arg == "--host") {
      if ((value = next("--host")) == nullptr) return usage("--host needs a value");
      options.server.host = value;
    } else if (arg == "--port") {
      int port = 0;
      if ((value = next("--port")) == nullptr || !parse_int(value, &port) ||
          port < 0 || port > 65535) {
        return usage("--port needs a port number");
      }
      options.server.port = static_cast<std::uint16_t>(port);
    } else if (arg == "--threads") {
      if ((value = next("--threads")) == nullptr ||
          !parse_int(value, &options.server.num_threads)) {
        return usage("--threads needs an integer");
      }
    } else if (arg == "--max-pending") {
      if ((value = next("--max-pending")) == nullptr ||
          !parse_int(value, &options.server.max_pending)) {
        return usage("--max-pending needs an integer");
      }
    } else if (arg == "--max-connections") {
      if ((value = next("--max-connections")) == nullptr ||
          !parse_int(value, &options.server.max_connections)) {
        return usage("--max-connections needs an integer");
      }
    } else if (arg == "--idle-timeout-ms") {
      if ((value = next("--idle-timeout-ms")) == nullptr ||
          !parse_int(value, &options.server.idle_timeout_ms)) {
        return usage("--idle-timeout-ms needs an integer");
      }
    } else if (arg == "--warm") {
      if ((value = next("--warm")) == nullptr) {
        return usage("--warm needs a technology name");
      }
      auto tech = cnfet::api::tech_from_string(value);
      if (!tech.ok()) return usage(tech.error().message);
      if (!warm_overridden) {
        options.server.warm.clear();
        warm_overridden = true;
      }
      options.server.warm.push_back(tech.value());
    } else if (arg == "--no-warm") {
      options.server.warm.clear();
      warm_overridden = true;
    } else if (arg == "--cache-dir") {
      if ((value = next("--cache-dir")) == nullptr) {
        return usage("--cache-dir needs a directory");
      }
      cnfet::api::LibraryCache::global().set_cache_dir(value);
    } else if (arg == "--port-file") {
      if ((value = next("--port-file")) == nullptr) {
        return usage("--port-file needs a path");
      }
      options.port_file = value;
    } else {
      return usage("unknown argument \"" + arg + "\"");
    }
  }
  return serve::run_daemon(options);
}
