// E1 — Table 1: area difference between the new compact (Euler) layout and
// the prior etched-region technique [6], per cell type and transistor size.
//
// Prints three blocks: the paper's reported numbers, our geometric
// measurements (whole-cell core area; the difference is concentrated in the
// parallel plane, as the paper notes), and the supporting per-cell
// structure audit (etch slots, redundant contacts, vertical-gating vias,
// immunity, DRC).
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/design_kit.hpp"
#include "util/table.hpp"

namespace {

using cnfet::core::DesignKit;
using cnfet::layout::LayoutStyle;
using cnfet::util::fmt_fixed;
using cnfet::util::fmt_percent;
using cnfet::util::TextTable;

const std::vector<double> kWidths = {3, 4, 6, 10};

// Paper Table 1 (percent area difference, new vs old).
const std::map<std::string, std::vector<double>> kPaper = {
    {"INV", {0, 0, 0, 0}},
    {"NAND2/NOR2", {17.18, 14.52, 11.67, 9.25}},
    {"NAND3/NOR3", {19.64, 16.67, 13.45, 10.71}},
    {"AOI22/OAI22", {32.2, 27.7, 22.5, 14.9}},
    {"AOI21/OAI21", {44.3, 40.6, 36.4, 32.5}},
};

double cell_core_area(const cnfet::layout::BuiltCell& built) {
  return built.layout.core_area_lambda2();
}

}  // namespace

int main() {
  std::printf("== E1 / Table 1: compact-Euler vs etched-region [6] ==\n\n");

  std::printf("Paper-reported area difference:\n");
  {
    TextTable t({"Cell type", "3l", "4l", "6l", "10l"});
    for (const auto& [name, row] : kPaper) {
      t.add_row({name, fmt_fixed(row[0], 2) + "%", fmt_fixed(row[1], 2) + "%",
                 fmt_fixed(row[2], 2) + "%", fmt_fixed(row[3], 2) + "%"});
    }
    std::printf("%s\n", t.to_string().c_str());
  }

  const DesignKit kit;
  std::printf("Measured (this kit, cell core area = strips + routing gap):\n");
  TextTable measured({"Cell", "3l", "4l", "6l", "10l", "old etch slots",
                      "new redundant contacts"});
  for (const char* name : {"INV", "NAND2", "NOR2", "NAND3", "NOR3", "AOI22",
                           "OAI22", "AOI21", "OAI21"}) {
    std::vector<std::string> row{name};
    int etches = 0, redundant = 0;
    for (const double w : kWidths) {
      const auto old_cell =
          kit.cell(name, LayoutStyle::kEtchedIsolatedBranches,
                   cnfet::layout::CellScheme::kScheme1, w);
      const auto new_cell = kit.cell(name, LayoutStyle::kCompactEuler,
                                     cnfet::layout::CellScheme::kScheme1, w);
      const double a_old = cell_core_area(old_cell);
      const double a_new = cell_core_area(new_cell);
      row.push_back(fmt_percent((a_old - a_new) / a_old, 2));
      etches = old_cell.layout.etch_slot_count();
      redundant = new_cell.plan.redundant_contacts;
    }
    row.push_back(std::to_string(etches));
    row.push_back(std::to_string(redundant));
    measured.add_row(std::move(row));
  }
  std::printf("%s\n", measured.to_string().c_str());

  std::printf("Structure audit at 4l (both techniques):\n");
  TextTable audit({"Cell", "style", "active area (l^2)", "core area (l^2)",
                   "etch", "red.contacts", "via-on-gate", "immune", "DRC"});
  for (const auto& s : kit.table1_sweep()) {
    if (s.width_lambda != 4.0) continue;
    audit.add_row({s.cell, cnfet::layout::to_string(s.style),
                   fmt_fixed(s.active_area_lambda2, 0),
                   fmt_fixed(s.core_area_lambda2, 0),
                   std::to_string(s.etch_slots),
                   std::to_string(s.redundant_contacts),
                   std::to_string(s.via_on_gate), s.immune ? "yes" : "NO",
                   s.drc_clean ? "clean" : "VIOLATIONS"});
  }
  std::printf("%s\n", audit.to_string().c_str());

  std::printf(
      "Shape check: INV identical under both techniques; every multi-branch\n"
      "cell is strictly smaller with the compact technique; both remain\n"
      "100%% immune. Our strip-geometry deltas are width-independent by\n"
      "construction (see EXPERIMENTS.md for the reconstruction analysis of\n"
      "the paper's width-dependent percentages).\n");
  return 0;
}
