// Wire-aware signoff bench: the grid router + Elmore extraction at the
// paper's 13-gate full adder and at the 10k-gate at-scale tier.
//
// Workloads:
//   * fa13   — the buffered full adder (9 NANDs + two 2-inverter output
//     buffers = 13 gates): the paper-scale shape, timed over many reps
//   * rca10k — a 1112-bit ripple-carry adder (10008 gates, ~12k nets):
//     the structured at-scale shape (uniform-random DAGs have no
//     locality, so their bisection width outgrows any fixed-layer
//     fabric; routing targets structured designs, like real netlists)
//
// Per workload: total wirelength, nets/sec through route()+extract(),
// and the routed-vs-ideal worst-arrival delta from re-timing with the
// extracted wire loads. Hard gates (scripts/check_perf.py --only route):
// 100% connectivity on both workloads, the independent open/short oracle
// clean, the wire DRC deck clean, byte-determinism of a repeated route,
// and routed timing never more optimistic than the ideal-net reference.
//
// Results merge into BENCH_perf.json as the "route" section (same
// read-modify-write contract as bench_mc: existing sections are kept).
//
//   $ ./bench_route           # a few seconds; updates ./BENCH_perf.json
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/design_kit.hpp"
#include "drc/drc.hpp"
#include "gen/gen.hpp"
#include "route/extract.hpp"
#include "route/router.hpp"
#include "sta/timing_graph.hpp"
#include "util/json.hpp"

namespace {

using namespace cnfet;
namespace json = util::json;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

template <typename Fn>
double best_ms(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const double elapsed = ms_since(start);
    if (elapsed < best) best = elapsed;
  }
  return best;
}

struct Workload {
  const char* name;
  flow::GateNetlist netlist;
  int reps;
};

struct Measured {
  std::size_t gates = 0;
  int nets = 0;
  double wirelength_lambda = 0.0;
  double nets_per_sec = 0.0;
  double ideal_ps = 0.0;
  double routed_ps = 0.0;
  bool complete = false;
  bool verify_ok = false;
  bool drc_clean = false;
  bool deterministic = false;

  [[nodiscard]] double wire_delay_ps() const { return routed_ps - ideal_ps; }
};

Measured measure(Workload& w, const layout::DesignRules& rules) {
  Measured m;
  m.gates = w.netlist.gates().size();
  m.nets = w.netlist.num_nets();
  const auto placement = flow::place(w.netlist);

  const auto routing = route::route(w.netlist, placement, rules);
  m.complete = routing.complete();
  m.wirelength_lambda = routing.total_wirelength_lambda;
  m.verify_ok = route::verify(w.netlist, placement, routing, rules).ok();
  m.drc_clean = drc::check_routes(routing, rules).clean();
  m.deterministic = route::route(w.netlist, placement, rules) == routing;

  const auto extraction = route::extract(w.netlist, routing, rules);
  sta::TimingGraph ideal(w.netlist);
  sta::TimingGraph wired(w.netlist, {}, 0.0,
                         extraction.to_wire_loads(w.netlist));
  m.ideal_ps = ideal.worst_arrival() * 1e12;
  m.routed_ps = wired.worst_arrival() * 1e12;

  const double ms = best_ms(w.reps, [&] {
    const auto r = route::route(w.netlist, placement, rules);
    (void)route::extract(w.netlist, r, rules);
  });
  m.nets_per_sec = static_cast<double>(m.nets) / (ms / 1e3);
  return m;
}

json::Value to_json(const Measured& m) {
  json::Value v = json::Value::object();
  v.set("gates", static_cast<std::int64_t>(m.gates));
  v.set("nets", m.nets);
  v.set("wirelength_lambda", m.wirelength_lambda);
  v.set("nets_per_sec", m.nets_per_sec);
  v.set("ideal_worst_arrival_ps", m.ideal_ps);
  v.set("routed_worst_arrival_ps", m.routed_ps);
  v.set("wire_delay_ps", m.wire_delay_ps());
  return v;
}

}  // namespace

int main() {
  static const core::DesignKit kit(layout::Tech::kCnfet65);
  const auto& lib = kit.library();
  const auto& rules = lib.cells().front().built.layout.rules();

  flow::FullAdderOptions fa_opts;
  fa_opts.sum_buffer_drive = 9.0;
  fa_opts.carry_buffer_drive = 7.0;
  Workload fa{"fa13", flow::build_full_adder(lib, fa_opts), 50};
  gen::GenOptions rca;
  rca.family = gen::Family::kRippleCarryAdder;
  rca.width = 1112;  // 9 gates per full-adder bit: 10008 gates
  Workload big{"rca10k", gen::generate(lib, rca).netlist, 3};

  std::printf("%-7s | %7s %7s | %10s %12s | %8s %8s %8s\n", "design",
              "gates", "nets", "wl lambda", "nets/sec", "ideal", "routed",
              "+wire");
  Measured results[2];
  Workload* loads[2] = {&fa, &big};
  for (int i = 0; i < 2; ++i) {
    results[i] = measure(*loads[i], rules);
    const auto& m = results[i];
    std::printf(
        "%-7s | %7zu %7d | %10.0f %12.0f | %6.2fps %6.2fps %6.2fps%s\n",
        loads[i]->name, m.gates, m.nets, m.wirelength_lambda, m.nets_per_sec,
        m.ideal_ps, m.routed_ps, m.wire_delay_ps(),
        m.complete && m.verify_ok && m.drc_clean && m.deterministic
            ? ""
            : "  <-- GATE FAILURE");
  }

  const bool connectivity = results[0].complete && results[1].complete;
  const bool verify_ok = results[0].verify_ok && results[1].verify_ok;
  const bool drc_clean = results[0].drc_clean && results[1].drc_clean;
  const bool deterministic =
      results[0].deterministic && results[1].deterministic;
  const bool never_faster = results[0].wire_delay_ps() >= 0.0 &&
                            results[1].wire_delay_ps() >= 0.0;
  const double min_nets_per_sec =
      std::min(results[0].nets_per_sec, results[1].nets_per_sec);

  // --- merge the "route" section into BENCH_perf.json -----------------------
  const char* path = "BENCH_perf.json";
  json::Value root = json::Value::object();
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream text;
      text << in.rdbuf();
      try {
        root = json::parse(text.str());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "existing %s is unparseable (%s); rewriting\n",
                     path, e.what());
        root = json::Value::object();
      }
    }
  }
  json::Value route = json::Value::object();
  route.set("fa13", to_json(results[0]));
  route.set("rca10k", to_json(results[1]));
  route.set("connectivity_complete", connectivity);
  route.set("verify_ok", verify_ok);
  route.set("drc_clean", drc_clean);
  route.set("deterministic", deterministic);
  route.set("routed_never_faster", never_faster);
  route.set("min_nets_per_sec", min_nets_per_sec);
  root.set("route", std::move(route));
  {
    std::ofstream out(path, std::ios::trunc);
    out << json::dump(root, 2) << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return 1;
    }
  }
  std::printf("\nmerged \"route\" into %s\n", path);

  if (!connectivity || !verify_ok || !drc_clean || !deterministic ||
      !never_faster) {
    std::fprintf(stderr,
                 "route bench hard failure (connectivity %d, verify %d, "
                 "drc %d, deterministic %d, never_faster %d)\n",
                 connectivity, verify_ok, drc_clean, deterministic,
                 never_faster);
    return 1;
  }
  return 0;
}
