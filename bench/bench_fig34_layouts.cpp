// E3 — Figures 3 and 4: construction walk-through of the NAND3 and AOI31
// layouts under both techniques, with strip sequences, ASCII art, areas,
// and the DRC/vertical-gating audit the paper's Section III discusses.
#include <cstdio>

#include "core/design_kit.hpp"
#include "drc/drc.hpp"
#include "layout/strip.hpp"
#include "util/table.hpp"

int main() {
  using cnfet::core::DesignKit;
  using cnfet::layout::LayoutStyle;
  using namespace cnfet;

  std::printf("== E3 / Figures 3-4: layout construction ==\n\n");
  const DesignKit kit;

  for (const char* name : {"NAND3", "AOI31"}) {
    for (const auto style : {LayoutStyle::kEtchedIsolatedBranches,
                             LayoutStyle::kCompactEuler}) {
      const auto built = kit.cell(name, style);
      std::printf("%s  [%s]\n", name, layout::to_string(style));
      std::printf("  PUN: %s\n",
                  layout::to_string(built.plan.pun, built.netlist).c_str());
      std::printf("  PDN: %s\n",
                  layout::to_string(built.plan.pdn, built.netlist).c_str());
      std::printf("  PUN active %.0f l^2 | core %.0f l^2 | etch %d | "
                  "redundant contacts %d | via-on-gate %d\n",
                  built.layout.pun().active_area_lambda2(),
                  built.layout.core_area_lambda2(),
                  built.layout.etch_slot_count(),
                  built.plan.redundant_contacts,
                  built.layout.via_on_gate_count());
      const auto report = drc::check(built.layout);
      std::printf("  DRC (conventional litho, no vertical gating): %s\n\n",
                  report.clean() ? "clean" : report.to_string().c_str());
    }
    const auto compact = kit.cell(name, LayoutStyle::kCompactEuler);
    std::printf("%s\n", compact.layout.ascii().c_str());
  }

  // Figure 3 headline: NAND3 PUN at 4 lambda, new vs old.
  const auto old_cell = kit.cell("NAND3", LayoutStyle::kEtchedIsolatedBranches);
  const auto new_cell = kit.cell("NAND3", LayoutStyle::kCompactEuler);
  const double a_old = old_cell.layout.pun().active_area_lambda2();
  const double a_new = new_cell.layout.pun().active_area_lambda2();
  std::printf(
      "NAND3 PUN at 4l: old %.0f l^2 -> new %.0f l^2, %.2f%% smaller "
      "(paper: 16.67%% under its area accounting)\n",
      a_old, a_new, 100.0 * (a_old - a_new) / a_old);
  return 0;
}
