// E4 — Figure 7 / case study 1: FO4 delay gain of the CNFET inverter over
// the 65nm CMOS inverter versus the number of CNTs per device (fixed gate
// width), the optimal CNT pitch and its +-1% flat range, the energy/cycle
// gains at one tube and at the optimum, and the inverter area gain versus
// transistor width.
#include <cstdio>
#include <vector>

#include "device/models.hpp"
#include "layout/cells.hpp"
#include "sim/fo4.hpp"
#include "util/table.hpp"

int main() {
  using namespace cnfet;

  std::printf("== E4 / Figure 7 + case study 1: FO4 inverter study ==\n\n");

  const auto cmos = sim::measure_fo4(device::cmos_inverter());
  std::printf("CMOS 65nm baseline: FO4 delay %s, energy/cycle %s\n\n",
              util::fmt_si(cmos.delay_s, "s").c_str(),
              util::fmt_si(cmos.energy_per_cycle_j, "J").c_str());

  util::TextTable t({"CNTs", "pitch (nm)", "FO4 delay", "delay gain",
                     "energy/cycle", "energy gain"});
  double best_gain = 0.0;
  int best_n = 1;
  std::vector<double> gains;
  const int max_tubes = 22;
  for (int n = 1; n <= max_tubes; ++n) {
    const auto r = sim::measure_fo4(device::cnfet_inverter(n));
    const double gain = cmos.delay_s / r.delay_s;
    const double egain = cmos.energy_per_cycle_j / r.energy_per_cycle_j;
    gains.push_back(gain);
    if (gain > best_gain) {
      best_gain = gain;
      best_n = n;
    }
    t.add_row({std::to_string(n),
               util::fmt_fixed(device::cnt_pitch_nm(n, 65.0), 2),
               util::fmt_si(r.delay_s, "s"), util::fmt_ratio(gain, 2),
               util::fmt_si(r.energy_per_cycle_j, "J"),
               util::fmt_ratio(egain, 2)});
  }
  std::printf("%s\n", t.to_string().c_str());

  const auto opt = sim::measure_fo4(device::cnfet_inverter(best_n));
  const double opt_pitch = device::cnt_pitch_nm(best_n, 65.0);
  std::printf("Optimum: %d tubes, pitch %.2fnm, delay gain %.2fx, energy "
              "gain %.2fx\n",
              best_n, opt_pitch, best_gain,
              cmos.energy_per_cycle_j / opt.energy_per_cycle_j);
  std::printf("(paper: optimal pitch 5nm; 4.2x delay, 2x energy; 1 CNT: "
              "2.75x delay, 6.3x energy)\n");

  // Flat range: pitches whose delay is within 1% of the optimum.
  double lo_pitch = opt_pitch, hi_pitch = opt_pitch;
  for (int n = 1; n <= max_tubes; ++n) {
    if (gains[static_cast<std::size_t>(n - 1)] >= 0.99 * best_gain) {
      const double p = device::cnt_pitch_nm(n, 65.0);
      lo_pitch = std::min(lo_pitch, p);
      hi_pitch = std::max(hi_pitch, p);
    }
  }
  std::printf("Optimal pitch range at 1%% FO4 tolerance: %.2f - %.2f nm "
              "(paper: 4.5 - 5.5 nm)\n\n",
              lo_pitch, hi_pitch);

  // Case-study-1 area gain: CNFET (W + 6 + W) vs CMOS (W + 10 + 1.4W).
  std::printf("Inverter area gain vs transistor width (core height ratio):\n");
  util::TextTable at({"W (lambda)", "CNFET core", "CMOS core", "area gain"});
  for (const double w : {3.0, 4.0, 6.0, 10.0, 16.0}) {
    layout::CellBuildOptions copt;
    copt.base_width_lambda = w;
    const auto cn = layout::build_cell(layout::find_cell_spec("INV"), copt);
    copt.tech = layout::Tech::kCmos65;
    const auto cm = layout::build_cell(layout::find_cell_spec("INV"), copt);
    at.add_row({util::fmt_fixed(w, 0),
                util::fmt_fixed(cn.layout.core_area_lambda2(), 1),
                util::fmt_fixed(cm.layout.core_area_lambda2(), 1),
                util::fmt_ratio(cm.layout.core_area_lambda2() /
                                    cn.layout.core_area_lambda2(),
                                2)});
  }
  std::printf("%s", at.to_string().c_str());
  std::printf("(paper: 1.4x at W = 4 lambda, declining for larger widths)\n");
  return 0;
}
