// Load-test harness for the cnfetd compile server.
//
// Measures, against an in-process serve::Server on a loopback socket:
//   * warm-vs-cold: p50 latency of a served compile against the daemon's
//     warm library cache vs a cold local `cnfetc compile` (library cache
//     cleared before every cold run). The acceptance floor — served warm
//     must beat cold by >= 5x — is gated in scripts/check_perf.py.
//   * a deterministic scripted request mix (compiles across the cell
//     family, sta, monte_carlo with a fixed seed, ping) over 4 concurrent
//     client connections: throughput plus p50/p95/p99 latency.
//   * the byte-identity contract: served GDS bytes and FlowMetrics equal
//     the direct api::Flow path for both technologies (exit 1 on any
//     mismatch — identity is a hard requirement, speed is gated later).
//
// Results merge into BENCH_perf.json as the "serve" section (the file is
// parsed and rewritten, so run bench_perf first; a missing file is
// created holding only "serve").
//
//   $ ./bench_serve           # ~10 s; updates ./BENCH_perf.json
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/library_cache.hpp"
#include "api/serialize.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/json.hpp"

namespace {

using namespace cnfet;
namespace json = util::json;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

json::Value compile_request(const std::string& cell, layout::Tech tech) {
  api::FlowJob job;
  job.cell = cell;
  job.options.tech = tech;
  json::Value request = serve::make_request(serve::RequestKind::kCompile);
  request.set("job", api::to_json(job));
  return request;
}

/// One cold `cnfetc compile`-equivalent: characterization + flow + GDS.
double cold_compile_ms() {
  api::LibraryCache::global().clear();
  const auto start = std::chrono::steady_clock::now();
  auto flow = api::Flow::from_cell("NAND3", {});
  if (!flow.ok() || !flow.value().run(api::Stage::kExported).ok()) {
    std::fprintf(stderr, "cold compile failed\n");
    std::exit(1);
  }
  return ms_since(start);
}

/// GDS bytes through the file path Flow::write_gds takes — the reference
/// the served bytes must match exactly.
std::string direct_gds_bytes(const std::string& cell, layout::Tech tech,
                             std::string* metrics_dump) {
  api::FlowOptions options;
  options.tech = tech;
  auto flow = api::Flow::from_cell(cell, options);
  if (!flow.ok() || !flow.value().run(api::Stage::kExported).ok()) return {};
  *metrics_dump = json::dump(api::to_json(flow.value().metrics()));
  const auto path = std::filesystem::temp_directory_path() /
                    ("bench_serve_" + cell + std::to_string(int(tech)) + ".gds");
  if (!flow.value().write_gds(path.string()).ok()) return {};
  std::ifstream in(path, std::ios::binary);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  std::filesystem::remove(path);
  return bytes.str();
}

}  // namespace

int main() {
  std::printf("== serve: cnfetd daemon load test ==\n\n");

  // --- cold baseline (what every daemon-less invocation pays) -------------
  double cold_ms = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    cold_ms = std::min(cold_ms, cold_compile_ms());
  }
  std::printf("cold local compile (cache cleared): %8.1f ms\n", cold_ms);

  // --- the warm server -----------------------------------------------------
  api::LibraryCache::global().clear();
  serve::ServerOptions options;
  options.warm = {layout::Tech::kCnfet65, layout::Tech::kCmos65};
  serve::Server server(std::move(options));
  auto port = server.start();
  if (!port.ok()) {
    std::fprintf(stderr, "server failed to start: %s\n",
                 port.error().to_string().c_str());
    return 1;
  }
  const std::string endpoint = "127.0.0.1:" + std::to_string(port.value());

  // --- identity: served bytes == direct bytes, both technologies ----------
  bool gds_identical = true;
  bool metrics_identical = true;
  for (const layout::Tech tech :
       {layout::Tech::kCnfet65, layout::Tech::kCmos65}) {
    auto client = serve::Client::connect(endpoint);
    if (!client.ok()) return 1;
    auto response = client.value().call(compile_request("NAND3", tech));
    if (!response.ok() || !response.value().get_bool("ok")) {
      std::fprintf(stderr, "served compile failed (%s)\n",
                   layout::to_string(tech));
      return 1;
    }
    const json::Value& result = response.value().at("result");
    auto served = serve::from_hex(result.get_string("gds_hex"));
    std::string direct_metrics;
    const std::string direct = direct_gds_bytes("NAND3", tech,
                                                &direct_metrics);
    gds_identical = gds_identical && served.ok() && !direct.empty() &&
                    served.value() == direct;
    metrics_identical = metrics_identical &&
                        json::dump(result.at("metrics")) == direct_metrics;
  }
  std::printf("served GDS identical to direct: %s | metrics identical: %s\n",
              gds_identical ? "yes" : "NO", metrics_identical ? "yes" : "NO");

  // --- warm served latency (sequential, one connection) -------------------
  constexpr int kWarmReps = 50;
  std::vector<double> warm_ms;
  {
    auto client = serve::Client::connect(endpoint);
    if (!client.ok()) return 1;
    for (int i = 0; i < kWarmReps; ++i) {
      const auto start = std::chrono::steady_clock::now();
      auto response = client.value().call(
          compile_request("NAND3", layout::Tech::kCnfet65));
      if (!response.ok() || !response.value().get_bool("ok")) return 1;
      warm_ms.push_back(ms_since(start));
    }
  }
  const double warm_p50 = percentile(warm_ms, 0.50);
  const double speedup = warm_p50 > 0.0 ? cold_ms / warm_p50 : 0.0;
  std::printf("warm served compile p50 over %d reps: %8.3f ms | "
              "warm-vs-cold speedup %.1fx\n",
              kWarmReps, warm_p50, speedup);

  // --- scripted mix over 4 concurrent connections --------------------------
  // Every connection runs the same fixed script, so the load is
  // reproducible run to run (modulo scheduling).
  const std::vector<std::string> family = {"INV",   "NAND2", "NOR2",
                                           "NAND3", "AOI21", "OAI21"};
  constexpr int kConnections = 4;
  constexpr int kRounds = 4;
  std::vector<std::vector<double>> per_connection(kConnections);
  std::vector<bool> connection_ok(kConnections, false);
  const auto mix_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < kConnections; ++t) {
    threads.emplace_back([&, t] {
      auto client = serve::Client::connect(endpoint);
      if (!client.ok()) return;
      auto timed_call = [&](json::Value request) {
        const auto start = std::chrono::steady_clock::now();
        auto response = client.value().call(std::move(request));
        if (!response.ok() || !response.value().get_bool("ok")) return false;
        per_connection[t].push_back(ms_since(start));
        return true;
      };
      for (int round = 0; round < kRounds; ++round) {
        for (const auto& cell : family) {
          const layout::Tech tech = (round % 2 == 0)
                                        ? layout::Tech::kCnfet65
                                        : layout::Tech::kCmos65;
          if (!timed_call(compile_request(cell, tech))) return;
        }
        json::Value sta = serve::make_request(serve::RequestKind::kSta);
        api::FlowJob job;
        job.cell = "AOI21";
        sta.set("job", api::to_json(job));
        if (!timed_call(std::move(sta))) return;
        json::Value mc = serve::make_request(serve::RequestKind::kMonteCarlo);
        mc.set("cell", "NAND2");
        mc.set("trials", 200);
        mc.set("seed", 42);
        if (!timed_call(std::move(mc))) return;
        if (!timed_call(serve::make_request(serve::RequestKind::kPing))) {
          return;
        }
      }
      connection_ok[t] = true;
    });
  }
  for (auto& thread : threads) thread.join();
  const double mix_wall_ms = ms_since(mix_start);
  std::vector<double> mix_ms;
  for (const auto& latencies : per_connection) {
    mix_ms.insert(mix_ms.end(), latencies.begin(), latencies.end());
  }
  bool mix_ok = true;
  for (const bool ok : connection_ok) mix_ok = mix_ok && ok;
  if (!mix_ok) {
    std::fprintf(stderr, "a mix connection failed\n");
    return 1;
  }
  const double p50 = percentile(mix_ms, 0.50);
  const double p95 = percentile(mix_ms, 0.95);
  const double p99 = percentile(mix_ms, 0.99);
  const double throughput =
      mix_wall_ms > 0.0 ? 1000.0 * static_cast<double>(mix_ms.size()) /
                              mix_wall_ms
                        : 0.0;
  std::printf("mixed load: %zu requests over %d connections in %8.1f ms | "
              "%.0f req/s | p50 %.3f ms p95 %.3f ms p99 %.3f ms\n",
              mix_ms.size(), kConnections, mix_wall_ms, throughput, p50, p95,
              p99);

  server.stop();
  const auto stats = server.stats();
  std::printf("server counters: %lld requests (%lld ok, %lld error)\n",
              static_cast<long long>(stats.requests_total),
              static_cast<long long>(stats.requests_ok),
              static_cast<long long>(stats.requests_error));

  // --- merge the "serve" section into BENCH_perf.json ----------------------
  const char* path = "BENCH_perf.json";
  json::Value root = json::Value::object();
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream text;
      text << in.rdbuf();
      try {
        root = json::parse(text.str());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "existing %s is unparseable (%s); rewriting\n",
                     path, e.what());
        root = json::Value::object();
      }
    }
  }
  json::Value serve_section = json::Value::object();
  serve_section.set("cold_compile_ms", cold_ms);
  serve_section.set("warm_served_p50_ms", warm_p50);
  serve_section.set("warm_vs_cold_speedup", speedup);
  serve_section.set("mix_connections", kConnections);
  serve_section.set("mix_requests", static_cast<int>(mix_ms.size()));
  serve_section.set("mix_wall_ms", mix_wall_ms);
  serve_section.set("throughput_req_per_sec", throughput);
  serve_section.set("p50_ms", p50);
  serve_section.set("p95_ms", p95);
  serve_section.set("p99_ms", p99);
  serve_section.set("gds_identical", gds_identical);
  serve_section.set("metrics_identical", metrics_identical);
  root.set("serve", std::move(serve_section));
  {
    std::ofstream out(path, std::ios::trunc);
    out << json::dump(root, 2) << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return 1;
    }
  }
  std::printf("\nmerged \"serve\" into %s\n", path);

  // Identity is the hard in-run requirement; the 5x warm-vs-cold floor is
  // host-sensitive, so scripts/check_perf.py gates it (and the identity
  // flags again) from the JSON.
  return (gds_identical && metrics_identical) ? 0 : 1;
}
