// E2 — Figure 2: mispositioned-CNT vulnerability demonstration.
//
// Reproduces the paper's motivating figure functionally: the inverter is
// immune even in the naive layout; the naive NAND2 shorts VDD to OUT; the
// etched technique [6] and the compact Euler technique restore 100%
// immunity. Both the exact (straight-tube proof) engine and Monte Carlo
// with misaligned, bent tubes report.
//
// Monte Carlo runs 100k trials per case (up from 2k before the indexed
// tracer): the naive-layout yield estimates carry ~10x tighter
// confidence intervals, at a few seconds for the whole table.
#include <cstdio>

#include "core/design_kit.hpp"
#include "util/table.hpp"

int main() {
  using cnfet::core::DesignKit;
  using cnfet::layout::LayoutStyle;
  using namespace cnfet;

  std::printf("== E2 / Figure 2: misaligned-CNT immunity ==\n\n");
  const DesignKit kit;

  util::TextTable t({"Cell", "layout", "exact proof", "hard shorts",
                     "MC yield (100k trials)", "stray shorts",
                     "stray chains"});

  const struct {
    const char* cell;
    LayoutStyle style;
  } cases[] = {
      {"INV", LayoutStyle::kNaiveVulnerable},
      {"NAND2", LayoutStyle::kNaiveVulnerable},
      {"NAND2", LayoutStyle::kEtchedIsolatedBranches},
      {"NAND2", LayoutStyle::kCompactEuler},
      {"NAND3", LayoutStyle::kNaiveVulnerable},
      {"NAND3", LayoutStyle::kEtchedIsolatedBranches},
      {"NAND3", LayoutStyle::kCompactEuler},
      {"AOI22", LayoutStyle::kNaiveVulnerable},
      {"AOI22", LayoutStyle::kCompactEuler},
  };

  for (const auto& c : cases) {
    const auto built = kit.cell(c.cell, c.style);
    const auto exact =
        cnt::check_exact(built.layout, built.netlist, built.function);
    const auto mc =
        cnt::monte_carlo(built.layout, built.netlist, built.function,
                         cnt::TubeModel{}, 100'000, 2024, /*num_threads=*/0);
    t.add_row({c.cell, layout::to_string(c.style),
               exact.immune ? "IMMUNE" : "VULNERABLE",
               std::to_string(exact.short_pairs),
               util::fmt_percent(mc.yield(), 2),
               std::to_string(mc.stray_shorts),
               std::to_string(mc.stray_chains)});
  }
  std::printf("%s\n", t.to_string().c_str());

  // The explicit Figure-2(b) tube: a fully doped straight tube crossing the
  // naive NAND2 PUN, shorting VDD to OUT.
  const auto naive = kit.cell("NAND2", LayoutStyle::kNaiveVulnerable);
  const auto geo = naive.layout.geometry();
  const auto& band = geo.bands[0];
  const double y = (band.rect.lo().y + band.rect.hi().y) / 2.0;
  const auto effects = cnt::trace_tube(
      geo, {{band.rect.lo().x - 10.0, y}, {band.rect.hi().x + 10.0, y}});
  std::printf("Figure 2(b) tube across the naive NAND2 PUN produces:\n");
  for (const auto& e : effects) {
    std::printf("  %s-%s via %zu gate(s)%s\n",
                naive.netlist.net_name(e.a).c_str(),
                naive.netlist.net_name(e.b).c_str(), e.chain.size(),
                e.is_short() && e.a != e.b ? "  <-- HARD SHORT" : "");
  }
  return 0;
}
