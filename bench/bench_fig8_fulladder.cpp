// E5 — Figure 8 / case study 2: the 9-NAND full adder.
//
// Characterizes the CNFET and CMOS libraries (shared through
// api::LibraryCache), sizes the adder at its EDP-optimal point by running
// one api::Flow per candidate sizing to the Timed stage, and places it
// three ways: CMOS rows, CNFET scheme 1 (standardized heights) and CNFET
// scheme 2 (natural heights, shelf-packed) — reporting the paper's delay,
// energy and area-gain numbers.
#include <cstdio>

#include "api/flow.hpp"
#include "util/table.hpp"

namespace {

using namespace cnfet;

struct SizedAdder {
  flow::FullAdderOptions sizing;
  sta::StaResult timing;
  double edp = 0.0;
};

/// Times one candidate sizing through the pipeline (Mapped -> Timed).
sta::StaResult time_adder(const api::LibraryHandle& library,
                          const flow::FullAdderOptions& options) {
  api::FlowOptions fopt;
  fopt.library = library;
  auto flow = api::Flow::from_netlist(flow::build_full_adder(*library, options),
                                      fopt);
  auto& f = flow.value();
  (void)f.run(api::Stage::kTimed).value();
  return f.timed()->timing;
}

SizedAdder size_for_edp(const api::LibraryHandle& library) {
  SizedAdder best;
  bool first = true;
  for (const double nand_drive : {1.0, 2.0, 4.0}) {
    for (const double buf : {0.0, 4.0, 7.0, 9.0}) {
      flow::FullAdderOptions options;
      options.nand_drive = nand_drive;
      options.sum_buffer_drive = buf;
      options.carry_buffer_drive = buf;
      const auto timing = time_adder(library, options);
      const double edp = timing.worst_arrival * timing.energy_per_cycle;
      if (first || edp < best.edp) {
        best = SizedAdder{options, timing, edp};
        first = false;
      }
    }
  }
  return best;
}

/// Places the paper-sized adder under one scheme (Mapped -> Placed). The
/// whole Flow is returned because the placement's instances point into the
/// flow-owned netlist.
api::Flow place_adder(const api::LibraryHandle& library,
                      const flow::FullAdderOptions& sizing,
                      layout::CellScheme scheme) {
  api::FlowOptions fopt;
  fopt.library = library;
  fopt.place.scheme = scheme;
  auto flow = api::Flow::from_netlist(flow::build_full_adder(*library, sizing),
                                      fopt);
  (void)flow.value().run(api::Stage::kPlaced).value();
  return std::move(flow).value();
}

}  // namespace

int main() {
  std::printf("== E5 / Figure 8 + case study 2: full adder ==\n\n");

  std::printf("Characterizing CNFET library (transient sims)...\n");
  const auto cnfet_lib =
      api::LibraryCache::global().get(layout::Tech::kCnfet65).value();
  std::printf("Characterizing CMOS 65nm library...\n\n");
  const auto cmos_lib =
      api::LibraryCache::global().get(layout::Tech::kCmos65).value();

  const auto cnfet_best = size_for_edp(cnfet_lib);
  const auto cmos_best = size_for_edp(cmos_lib);

  util::TextTable t({"metric", "CMOS 65nm", "CNFET", "gain", "paper"});
  const double dgain =
      cmos_best.timing.worst_arrival / cnfet_best.timing.worst_arrival;
  const double egain =
      cmos_best.timing.energy_per_cycle / cnfet_best.timing.energy_per_cycle;
  t.add_row({"critical-path delay",
             util::fmt_si(cmos_best.timing.worst_arrival, "s"),
             util::fmt_si(cnfet_best.timing.worst_arrival, "s"),
             util::fmt_ratio(dgain, 2), "~3.5x"});
  t.add_row({"energy/cycle",
             util::fmt_si(cmos_best.timing.energy_per_cycle, "J"),
             util::fmt_si(cnfet_best.timing.energy_per_cycle, "J"),
             util::fmt_ratio(egain, 2), "~1.5x"});
  std::printf("%s\n", t.to_string().c_str());

  std::printf("EDP-optimal sizing: CNFET NAND %.0fX / buffers %.0fX; "
              "CMOS NAND %.0fX / buffers %.0fX\n",
              cnfet_best.sizing.nand_drive,
              cnfet_best.sizing.sum_buffer_drive, cmos_best.sizing.nand_drive,
              cmos_best.sizing.sum_buffer_drive);
  std::printf("CNFET critical path:");
  for (const auto& g : cnfet_best.timing.critical_path) {
    std::printf(" %s", g.c_str());
  }
  std::printf("\n\n");

  // Placement comparison (Figure 8b/8c) uses the paper's drawn sizing —
  // NAND2 2X with mixed-drive output buffers — which is what creates the
  // cell-height spread scheme 2 recovers.
  flow::FullAdderOptions paper_sizing;
  paper_sizing.nand_drive = 2.0;
  paper_sizing.sum_buffer_drive = 9.0;
  paper_sizing.carry_buffer_drive = 7.0;

  const auto f_cmos =
      place_adder(cmos_lib, paper_sizing, layout::CellScheme::kScheme1);
  const auto f_s1 =
      place_adder(cnfet_lib, paper_sizing, layout::CellScheme::kScheme1);
  const auto f_s2 =
      place_adder(cnfet_lib, paper_sizing, layout::CellScheme::kScheme2);
  const auto& p_cmos = f_cmos.placed()->placement;
  const auto& p_s1 = f_s1.placed()->placement;
  const auto& p_s2 = f_s2.placed()->placement;

  util::TextTable pt({"placement", "area (l^2)", "utilization", "HPWL (l)",
                      "area gain vs CMOS", "paper"});
  auto row = [&](const char* name, const flow::PlacementResult& p,
                 const char* paper) {
    pt.add_row({name, util::fmt_fixed(p.placed_area_lambda2, 0),
                util::fmt_percent(p.utilization(), 1),
                util::fmt_fixed(p.hpwl_lambda, 0),
                util::fmt_ratio(p_cmos.placed_area_lambda2 /
                                    p.placed_area_lambda2,
                                2),
                paper});
  };
  row("CMOS rows", p_cmos, "1x");
  row("CNFET scheme 1", p_s1, "~1.4x");
  row("CNFET scheme 2", p_s2, "~1.6x");
  std::printf("%s\n", pt.to_string().c_str());

  std::printf("Area savings vs CMOS: scheme 1 %s, scheme 2 %s "
              "(paper: >30%% and >50%%/37.5%%)\n\n",
              util::fmt_percent(1.0 - p_s1.placed_area_lambda2 /
                                          p_cmos.placed_area_lambda2,
                                1)
                  .c_str(),
              util::fmt_percent(1.0 - p_s2.placed_area_lambda2 /
                                          p_cmos.placed_area_lambda2,
                                1)
                  .c_str());

  // Timing-driven optimization: the same adder drawn weak (all 1X, no
  // buffers), handed to the opt:: passes through Stage::kOptimized. The
  // sweep's hand-picked sizing above is the human baseline; this is what
  // the greedy sizing/buffering pass finds on its own inside a bounded
  // area budget.
  flow::FullAdderOptions weak;
  weak.nand_drive = 1.0;
  api::FlowOptions oopt;
  oopt.library = cnfet_lib;
  oopt.optimize = true;
  oopt.max_area_growth = 0.5;
  auto optimized = api::Flow::from_netlist(
      flow::build_full_adder(*cnfet_lib, weak), oopt);
  (void)optimized.value().run(api::Stage::kOptimized).value();
  const auto om = optimized.value().metrics();
  std::printf("opt:: pass on the all-1X adder: delay %s -> %s "
              "(%s faster), %d resized / %d buffer gates / %d removed, "
              "area %s growth (budget %.0f%%)\n",
              util::fmt_si(om.pre_opt_worst_arrival_s, "s").c_str(),
              util::fmt_si(om.worst_arrival_s, "s").c_str(),
              util::fmt_ratio(om.pre_opt_worst_arrival_s /
                                  om.worst_arrival_s,
                              2)
                  .c_str(),
              om.gates_resized, om.buffers_inserted, om.gates_removed,
              util::fmt_percent(om.opt_area_growth, 1).c_str(),
              100.0 * oopt.max_area_growth);
  std::printf("hand sweep EDP-optimal delay for reference: %s\n",
              util::fmt_si(cnfet_best.timing.worst_arrival, "s").c_str());
  return 0;
}
