// E8 — performance harness for the parallel execution subsystem: times the
// two hot paths (cnt::monte_carlo trial sharding, api::run_batch job
// fan-out) serially and with one worker per hardware thread, verifies the
// parallel results are identical to the serial ones, and writes the
// numbers to BENCH_perf.json so the perf trajectory is machine-readable.
//
//   $ ./bench_perf            # ~10 s; writes ./BENCH_perf.json
#include <chrono>
#include <cstdio>
#include <string>

#include "api/batch.hpp"
#include "cnt/analyzer.hpp"
#include "layout/cells.hpp"
#include "util/parallel.hpp"

namespace {

using namespace cnfet;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Best-of-`reps` wall time of fn, in milliseconds.
template <typename Fn>
double best_ms(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const double elapsed = ms_since(start);
    if (elapsed < best) best = elapsed;
  }
  return best;
}

struct Timing {
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  bool identical = false;

  [[nodiscard]] double speedup() const {
    return parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
  }
};

void print_timing(const char* name, const Timing& t) {
  std::printf("%-12s serial %8.1f ms | parallel %8.1f ms | speedup %.2fx | "
              "results identical: %s\n",
              name, t.serial_ms, t.parallel_ms, t.speedup(),
              t.identical ? "yes" : "NO");
}

}  // namespace

int main() {
  using namespace cnfet;
  const int threads = util::hardware_threads();
  std::printf("== E8 / perf: serial vs %d-thread wall time ==\n\n", threads);

  // Warm the per-tech library cache so run_batch timings measure the
  // pipeline, not one-time characterization.
  (void)api::LibraryCache::global().get(layout::Tech::kCnfet65);
  (void)api::LibraryCache::global().get(layout::Tech::kCmos65);

  // --- Monte Carlo: trials shard across workers ---------------------------
  constexpr int kTrials = 6000;
  constexpr std::uint64_t kSeed = 42;
  const auto built = layout::build_cell(layout::find_cell_spec("NAND3"));
  auto run_mc = [&](int num_threads) {
    return cnt::monte_carlo(built.layout, built.netlist, built.function,
                            cnt::TubeModel{}, kTrials, kSeed, num_threads);
  };
  Timing mc;
  cnt::MonteCarloResult mc_serial;
  cnt::MonteCarloResult mc_parallel;
  mc.serial_ms = best_ms(3, [&] { mc_serial = run_mc(1); });
  mc.parallel_ms = best_ms(3, [&] { mc_parallel = run_mc(threads); });
  mc.identical = mc_serial.failing_trials == mc_parallel.failing_trials &&
                 mc_serial.tubes_sampled == mc_parallel.tubes_sampled &&
                 mc_serial.stray_shorts == mc_parallel.stray_shorts &&
                 mc_serial.stray_chains == mc_parallel.stray_chains;
  print_timing("monte_carlo", mc);

  // --- run_batch: the Table-1 family under both technologies -------------
  // One family pass is sub-millisecond against a warm library, so repeat
  // it until the wall time dominates pool startup (the job list models a
  // regression batch re-running the family many times).
  const auto family = api::family_jobs(
      {layout::Tech::kCnfet65, layout::Tech::kCmos65});
  std::vector<api::FlowJob> jobs;
  for (int rep = 0; rep < 40; ++rep) {
    jobs.insert(jobs.end(), family.begin(), family.end());
  }
  auto run_jobs = [&](int num_threads) {
    api::BatchOptions options;
    options.num_threads = num_threads;
    return api::run_batch(jobs, options);
  };
  Timing batch;
  std::string batch_serial;
  std::string batch_parallel;
  batch.serial_ms = best_ms(2, [&] {
    const auto report = run_jobs(1);
    batch_serial = report.to_string() + report.merged_diagnostics().to_string();
  });
  batch.parallel_ms = best_ms(2, [&] {
    const auto report = run_jobs(threads);
    batch_parallel =
        report.to_string() + report.merged_diagnostics().to_string();
  });
  batch.identical = batch_serial == batch_parallel;
  print_timing("run_batch", batch);

  // --- machine-readable trajectory ---------------------------------------
  const char* path = "BENCH_perf.json";
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::printf("cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"threads\": %d,\n"
               "  \"monte_carlo\": {\n"
               "    \"cell\": \"NAND3\",\n"
               "    \"trials\": %d,\n"
               "    \"serial_ms\": %.3f,\n"
               "    \"parallel_ms\": %.3f,\n"
               "    \"speedup\": %.3f,\n"
               "    \"trials_per_sec_serial\": %.1f,\n"
               "    \"trials_per_sec_parallel\": %.1f,\n"
               "    \"identical\": %s\n"
               "  },\n"
               "  \"run_batch\": {\n"
               "    \"jobs\": %zu,\n"
               "    \"serial_ms\": %.3f,\n"
               "    \"parallel_ms\": %.3f,\n"
               "    \"speedup\": %.3f,\n"
               "    \"identical\": %s\n"
               "  }\n"
               "}\n",
               threads, kTrials, mc.serial_ms, mc.parallel_ms, mc.speedup(),
               1000.0 * kTrials / mc.serial_ms,
               1000.0 * kTrials / mc.parallel_ms,
               mc.identical ? "true" : "false", jobs.size(), batch.serial_ms,
               batch.parallel_ms, batch.speedup(),
               batch.identical ? "true" : "false");
  std::fclose(out);
  std::printf("\nwrote %s\n", path);

  // Equivalence is a hard requirement; speedup depends on the host's cores.
  return (mc.identical && batch.identical) ? 0 : 1;
}
