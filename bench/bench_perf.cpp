// E8 — performance harness: times the solver hot paths (single-arc
// transient, cold library characterization) under the seed engine
// (fixed-step, finite-difference Jacobian) vs the fast engine (adaptive,
// analytic Jacobian), the parallel characterization grid, the incremental
// timing graph (single-gate edit re-time vs full rebuild on the paper's
// buffered full adder, with a bit-for-bit equivalence check and a 10x
// floor), the library disk cache (cold serial characterization vs a
// versioned-JSON load, NLDM-exact with its own 10x floor), and the two
// parallel-subsystem paths from PR 2 (cnt::monte_carlo trial sharding,
// api::run_batch job fan-out).
// Verifies the fast engine stays inside the accuracy-equivalence contract
// (delays within 1%, per-cycle energies within 2% of the seed engine) and
// that parallel results are identical to serial, then writes everything
// to BENCH_perf.json so the perf trajectory is machine-readable
// (scripts/check_perf.py gates on it).
//
//   $ ./bench_perf            # ~15 s; writes ./BENCH_perf.json
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>

#include "api/batch.hpp"
#include "api/serialize.hpp"
#include "cnt/analyzer.hpp"
#include "layout/cells.hpp"
#include "liberty/library.hpp"
#include "sta/timing_graph.hpp"
#include "util/parallel.hpp"

namespace {

using namespace cnfet;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Best-of-`reps` wall time of fn, in milliseconds.
template <typename Fn>
double best_ms(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const double elapsed = ms_since(start);
    if (elapsed < best) best = elapsed;
  }
  return best;
}

struct Timing {
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  bool identical = false;

  [[nodiscard]] double speedup() const {
    return parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
  }
};

void print_timing(const char* name, const Timing& t) {
  std::printf("%-12s serial %8.1f ms | parallel %8.1f ms | speedup %.2fx | "
              "results identical: %s\n",
              name, t.serial_ms, t.parallel_ms, t.speedup(),
              t.identical ? "yes" : "NO");
}

}  // namespace

int main() {
  using namespace cnfet;
  const int threads = util::hardware_threads();
  std::printf("== E8 / perf: serial vs %d-thread wall time ==\n\n", threads);

  // --- single-arc transient: seed engine vs fast engine -------------------
  liberty::CharacterizeOptions seed_engine;
  seed_engine.transient.adaptive = false;
  seed_engine.transient.analytic_jacobian = false;
  seed_engine.num_threads = 1;
  liberty::CharacterizeOptions fast_serial = seed_engine;
  fast_serial.transient = {};
  fast_serial.transient.tstep = 0.25e-12;
  fast_serial.transient.tstop = 400e-12;
  const liberty::CharacterizeOptions fast_parallel = [&] {
    auto o = fast_serial;
    o.num_threads = 0;  // one worker per hardware thread
    return o;
  }();

  const auto nand2 = layout::build_cell(layout::find_cell_spec("NAND2"));
  auto one_arc = [&](const liberty::CharacterizeOptions& o, bool rising) {
    return liberty::measure_arc(nand2.netlist, 0, 0b10, rising, 20e-12,
                                6e-15, o);
  };
  double tran_seed_ms = best_ms(5, [&] { (void)one_arc(seed_engine, true); });
  double tran_fast_ms = best_ms(5, [&] { (void)one_arc(fast_serial, true); });
  double tran_delay_err = 0.0;
  double e_cycle_seed = 0.0;
  double e_cycle_fast = 0.0;
  for (const bool rising : {true, false}) {
    const auto ms = one_arc(seed_engine, rising);
    const auto mf = one_arc(fast_serial, rising);
    tran_delay_err = std::max(tran_delay_err,
                              std::fabs(mf.delay - ms.delay) / ms.delay);
    e_cycle_seed += ms.energy;
    e_cycle_fast += mf.energy;
  }
  const double tran_energy_err =
      std::fabs(e_cycle_fast - e_cycle_seed) / std::fabs(e_cycle_seed);
  const double tran_speedup =
      tran_fast_ms > 0.0 ? tran_seed_ms / tran_fast_ms : 0.0;
  const bool tran_ok = tran_delay_err <= 0.01 && tran_energy_err <= 0.02;
  std::printf("transient    seed %8.3f ms | fast %8.3f ms | speedup %.2fx | "
              "delay err %.3f%% energy err %.3f%%\n",
              tran_seed_ms, tran_fast_ms, tran_speedup, 100 * tran_delay_err,
              100 * tran_energy_err);

  // --- cold characterization: seed vs fast engine, serial vs parallel -----
  liberty::Library lib_seed;
  liberty::Library lib_fast;
  liberty::Library lib_par;
  const double char_seed_ms =
      best_ms(1, [&] { lib_seed = liberty::build_library(seed_engine); });
  const double char_fast_ms =
      best_ms(1, [&] { lib_fast = liberty::build_library(fast_serial); });
  const double char_par_ms =
      best_ms(1, [&] { lib_par = liberty::build_library(fast_parallel); });

  // Accuracy of the fast engine across every cell/arc/grid point, and
  // bit-stability of the parallel grid against the serial one. The grid
  // delay bound is dual: 2% relative OR 0.15ps absolute (half a seed
  // step), because the seed reference itself is only half-a-step accurate
  // — at sub-picosecond delays a 4x-refined seed run agrees with the
  // adaptive engine, not with the seed's own 0.25ps march.
  double char_delay_err = 0.0;
  double char_delay_abs = 0.0;
  bool char_delay_ok = true;
  double char_energy_err = 0.0;
  bool char_identical = true;
  for (std::size_t c = 0; c < lib_seed.cells().size(); ++c) {
    const auto& cs = lib_seed.cells()[c];
    const auto& cf = lib_fast.cells()[c];
    const auto& cp = lib_par.cells()[c];
    for (std::size_t a = 0; a < cs.arcs.size(); ++a) {
      const auto& slews = cs.arcs[a].delay.slews();
      const auto& loads = cs.arcs[a].delay.loads();
      // Rise/fall arcs of one input are adjacent; pair them so energy is
      // compared per full cycle (the half-cycle where the supply only
      // feeds short-circuit current is noise-scale on its own).
      const std::size_t pair = a ^ 1u;
      for (std::size_t si = 0; si < slews.size(); ++si) {
        for (std::size_t li = 0; li < loads.size(); ++li) {
          const double ds = cs.arcs[a].delay.at(si, li);
          const double df = cf.arcs[a].delay.at(si, li);
          char_delay_err =
              std::max(char_delay_err, std::fabs(df - ds) / ds);
          char_delay_abs = std::max(char_delay_abs, std::fabs(df - ds));
          char_delay_ok = char_delay_ok &&
                          std::fabs(df - ds) <= std::max(0.02 * ds, 0.15e-12);
          const double es = cs.arcs[a].energy.at(si, li) +
                            cs.arcs[pair].energy.at(si, li);
          const double ef = cf.arcs[a].energy.at(si, li) +
                            cf.arcs[pair].energy.at(si, li);
          char_energy_err =
              std::max(char_energy_err, std::fabs(ef - es) / std::fabs(es));
          char_identical = char_identical &&
                           cf.arcs[a].delay.at(si, li) ==
                               cp.arcs[a].delay.at(si, li) &&
                           cf.arcs[a].out_slew.at(si, li) ==
                               cp.arcs[a].out_slew.at(si, li) &&
                           cf.arcs[a].energy.at(si, li) ==
                               cp.arcs[a].energy.at(si, li);
        }
      }
    }
  }
  const double char_speedup =
      char_fast_ms > 0.0 ? char_seed_ms / char_fast_ms : 0.0;
  const double char_par_speedup =
      char_par_ms > 0.0 ? char_seed_ms / char_par_ms : 0.0;
  const bool char_ok =
      char_delay_ok && char_energy_err <= 0.02 && char_identical;
  std::printf("characterize seed %8.1f ms | fast %8.1f ms | speedup %.2fx | "
              "parallel %8.1f ms (%.2fx) | delay err %.3f%% (%.4fps abs) "
              "energy err %.3f%% | parallel identical: %s\n",
              char_seed_ms, char_fast_ms, char_speedup, char_par_ms,
              char_par_speedup, 100 * char_delay_err, char_delay_abs * 1e12,
              100 * char_energy_err, char_identical ? "yes" : "NO");

  // --- library disk cache: cold characterization vs JSON load -------------
  // The disk tier (api::LibraryCache::set_cache_dir) replaces the whole
  // transient characterization grid with a parse plus a deterministic
  // geometry rebuild; the acceptance floor is a 10x win over *serial*
  // characterization, checked against the fast-serial library measured
  // above. Tables must load back exactly — a disk hit has to be
  // indistinguishable from the in-memory build.
  const char* cache_file = "BENCH_library_cache.json";
  const auto lib_saved = api::save_library(lib_fast, cache_file);
  if (!lib_saved.ok()) {
    std::printf("library save failed: %s\n",
                lib_saved.error().to_string().c_str());
    return 1;
  }
  api::LibraryHandle lib_loaded;
  const double cache_load_ms = best_ms(5, [&] {
    auto loaded = api::load_library(cache_file);
    lib_loaded = loaded.ok() ? loaded.value() : nullptr;
  });
  bool cache_exact = lib_loaded != nullptr &&
                     lib_loaded->cells().size() == lib_fast.cells().size();
  if (cache_exact) {
    for (std::size_t c = 0; c < lib_fast.cells().size(); ++c) {
      const auto& cf = lib_fast.cells()[c];
      const auto& cl = lib_loaded->cells()[c];
      cache_exact = cache_exact && cf.name == cl.name &&
                    cf.input_cap == cl.input_cap &&
                    cf.area_lambda2 == cl.area_lambda2 &&
                    cf.arcs.size() == cl.arcs.size();
      if (!cache_exact) break;
      for (std::size_t a = 0; a < cf.arcs.size(); ++a) {
        const auto& slews = cf.arcs[a].delay.slews();
        const auto& loads = cf.arcs[a].delay.loads();
        for (std::size_t si = 0; si < slews.size(); ++si) {
          for (std::size_t li = 0; li < loads.size(); ++li) {
            cache_exact = cache_exact &&
                          cf.arcs[a].delay.at(si, li) ==
                              cl.arcs[a].delay.at(si, li) &&
                          cf.arcs[a].out_slew.at(si, li) ==
                              cl.arcs[a].out_slew.at(si, li) &&
                          cf.arcs[a].energy.at(si, li) ==
                              cl.arcs[a].energy.at(si, li);
          }
        }
      }
    }
  }
  std::remove(cache_file);
  const double cache_speedup =
      cache_load_ms > 0.0 ? char_fast_ms / cache_load_ms : 0.0;
  const bool cache_ok = cache_exact && cache_speedup >= 10.0;
  std::printf("library_cache characterize %8.1f ms | disk load %8.3f ms | "
              "speedup %.1fx | tables exact: %s\n",
              char_fast_ms, cache_load_ms, cache_speedup,
              cache_exact ? "yes" : "NO");

  // Warm the per-tech library cache so run_batch timings measure the
  // pipeline, not one-time characterization.
  const auto cnfet_lib =
      api::LibraryCache::global().get(layout::Tech::kCnfet65).value();
  (void)api::LibraryCache::global().get(layout::Tech::kCmos65);

  // --- timing graph: full rebuild vs incremental re-time ------------------
  // The paper's drawn full adder (9 NAND2 + sum/carry buffer pairs). One
  // sizing edit — the final sum buffer swapped between drives — against a
  // from-scratch TimingGraph build, which is what every what-if paid
  // before the incremental graph existed.
  flow::FullAdderOptions paper_sizing;
  paper_sizing.sum_buffer_drive = 9.0;
  paper_sizing.carry_buffer_drive = 7.0;
  auto adder = flow::build_full_adder(*cnfet_lib, paper_sizing);
  const auto* inv7 = &cnfet_lib->find("INV_7X");
  const auto* inv9 = &cnfet_lib->find("INV_9X");
  const int sum_gate = adder.driver_index(adder.outputs()[0]);
  constexpr int kFullReps = 2000;
  constexpr int kEditReps = 20000;
  const double tg_full_ms = best_ms(5, [&] {
                              for (int i = 0; i < kFullReps; ++i) {
                                sta::TimingGraph fresh(adder);
                                (void)fresh.worst_arrival();
                              }
                            }) /
                            kFullReps;
  sta::TimingGraph graph(adder);
  (void)graph.worst_arrival();
  const double tg_incr_ms = best_ms(5, [&] {
                              for (int i = 0; i < kEditReps; ++i) {
                                adder.resize_gate(sum_gate,
                                                  (i & 1) ? inv7 : inv9);
                                graph.on_gate_replaced(sum_gate);
                                (void)graph.worst_arrival();
                              }
                            }) /
                            kEditReps;
  const bool tg_identical = graph.matches_full_rebuild();
  const double tg_speedup = tg_incr_ms > 0.0 ? tg_full_ms / tg_incr_ms : 0.0;
  const bool tg_ok = tg_identical && tg_speedup >= 10.0;
  std::printf("timing_graph full rebuild %8.2f us | incremental edit %8.2f us "
              "| speedup %.2fx | incremental==full: %s\n",
              tg_full_ms * 1e3, tg_incr_ms * 1e3, tg_speedup,
              tg_identical ? "yes" : "NO");

  // --- Monte Carlo: trials shard across workers ---------------------------
  constexpr int kTrials = 6000;
  constexpr std::uint64_t kSeed = 42;
  const auto built = layout::build_cell(layout::find_cell_spec("NAND3"));
  auto run_mc = [&](int num_threads) {
    return cnt::monte_carlo(built.layout, built.netlist, built.function,
                            cnt::TubeModel{}, kTrials, kSeed, num_threads);
  };
  Timing mc;
  cnt::MonteCarloResult mc_serial;
  cnt::MonteCarloResult mc_parallel;
  mc.serial_ms = best_ms(3, [&] { mc_serial = run_mc(1); });
  mc.parallel_ms = best_ms(3, [&] { mc_parallel = run_mc(threads); });
  mc.identical = mc_serial.failing_trials == mc_parallel.failing_trials &&
                 mc_serial.tubes_sampled == mc_parallel.tubes_sampled &&
                 mc_serial.stray_shorts == mc_parallel.stray_shorts &&
                 mc_serial.stray_chains == mc_parallel.stray_chains;
  print_timing("monte_carlo", mc);

  // --- run_batch: the Table-1 family under both technologies -------------
  // One family pass is sub-millisecond against a warm library, so repeat
  // it until the wall time dominates pool startup (the job list models a
  // regression batch re-running the family many times).
  const auto family = api::family_jobs(
      {layout::Tech::kCnfet65, layout::Tech::kCmos65});
  std::vector<api::FlowJob> jobs;
  for (int rep = 0; rep < 40; ++rep) {
    jobs.insert(jobs.end(), family.begin(), family.end());
  }
  auto run_jobs = [&](int num_threads) {
    api::BatchOptions options;
    options.num_threads = num_threads;
    return api::run_batch(jobs, options);
  };
  Timing batch;
  std::string batch_serial;
  std::string batch_parallel;
  batch.serial_ms = best_ms(2, [&] {
    const auto report = run_jobs(1);
    batch_serial = report.to_string() + report.merged_diagnostics().to_string();
  });
  batch.parallel_ms = best_ms(2, [&] {
    const auto report = run_jobs(threads);
    batch_parallel =
        report.to_string() + report.merged_diagnostics().to_string();
  });
  batch.identical = batch_serial == batch_parallel;
  print_timing("run_batch", batch);

  // --- machine-readable trajectory ---------------------------------------
  const char* path = "BENCH_perf.json";
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::printf("cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"threads\": %d,\n"
               "  \"transient_single_arc\": {\n"
               "    \"cell\": \"NAND2\",\n"
               "    \"seed_ms\": %.4f,\n"
               "    \"fast_ms\": %.4f,\n"
               "    \"speedup\": %.3f,\n"
               "    \"delay_rel_err\": %.5f,\n"
               "    \"energy_rel_err\": %.5f,\n"
               "    \"within_tolerance\": %s\n"
               "  },\n"
               "  \"characterization\": {\n"
               "    \"cells\": %zu,\n"
               "    \"seed_serial_ms\": %.3f,\n"
               "    \"fast_serial_ms\": %.3f,\n"
               "    \"serial_speedup\": %.3f,\n"
               "    \"fast_parallel_ms\": %.3f,\n"
               "    \"parallel_speedup\": %.3f,\n"
               "    \"delay_rel_err\": %.5f,\n"
               "    \"delay_abs_err_ps\": %.5f,\n"
               "    \"delay_within_bounds\": %s,\n"
               "    \"energy_rel_err\": %.5f,\n"
               "    \"parallel_identical\": %s\n"
               "  },\n"
               "  \"library_cache\": {\n"
               "    \"characterize_serial_ms\": %.3f,\n"
               "    \"disk_load_ms\": %.4f,\n"
               "    \"speedup\": %.3f,\n"
               "    \"tables_exact\": %s\n"
               "  },\n"
               "  \"timing_graph\": {\n"
               "    \"circuit\": \"full_adder_9nand_buffered\",\n"
               "    \"gates\": %zu,\n"
               "    \"full_rebuild_us\": %.4f,\n"
               "    \"incremental_edit_us\": %.4f,\n"
               "    \"speedup\": %.3f,\n"
               "    \"identical\": %s\n"
               "  },\n"
               "  \"monte_carlo\": {\n"
               "    \"cell\": \"NAND3\",\n"
               "    \"trials\": %d,\n"
               "    \"serial_ms\": %.3f,\n"
               "    \"parallel_ms\": %.3f,\n"
               "    \"speedup\": %.3f,\n"
               "    \"trials_per_sec_serial\": %.1f,\n"
               "    \"trials_per_sec_parallel\": %.1f,\n"
               "    \"identical\": %s\n"
               "  },\n"
               "  \"run_batch\": {\n"
               "    \"jobs\": %zu,\n"
               "    \"serial_ms\": %.3f,\n"
               "    \"parallel_ms\": %.3f,\n"
               "    \"speedup\": %.3f,\n"
               "    \"identical\": %s\n"
               "  }\n"
               "}\n",
               threads, tran_seed_ms, tran_fast_ms, tran_speedup,
               tran_delay_err, tran_energy_err, tran_ok ? "true" : "false",
               lib_seed.cells().size(), char_seed_ms, char_fast_ms,
               char_speedup, char_par_ms, char_par_speedup, char_delay_err,
               char_delay_abs * 1e12, char_delay_ok ? "true" : "false",
               char_energy_err, char_identical ? "true" : "false",
               char_fast_ms, cache_load_ms, cache_speedup,
               cache_exact ? "true" : "false",
               adder.gates().size(), tg_full_ms * 1e3, tg_incr_ms * 1e3,
               tg_speedup, tg_identical ? "true" : "false", kTrials,
               mc.serial_ms, mc.parallel_ms, mc.speedup(),
               1000.0 * kTrials / mc.serial_ms,
               1000.0 * kTrials / mc.parallel_ms,
               mc.identical ? "true" : "false", jobs.size(), batch.serial_ms,
               batch.parallel_ms, batch.speedup(),
               batch.identical ? "true" : "false");
  std::fclose(out);
  std::printf("\nwrote %s\n", path);

  // Equivalence and accuracy are hard requirements; speedup depends on the
  // host's cores (scripts/check_perf.py gates the speedups separately).
  // The timing-graph incremental==full equivalence and its 10x floor are
  // in-run ratios, so they gate here too.
  return (mc.identical && batch.identical && tran_ok && char_ok && tg_ok &&
          cache_ok)
             ? 0
             : 1;
}
