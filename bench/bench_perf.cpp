// E8 — google-benchmark microbenchmarks of the kit's algorithms: Euler
// layout synthesis, exact immunity proof, Monte Carlo throughput, transient
// simulation, and the api::Flow pipeline stages (mapping, placement,
// export) against a pre-characterized shared library.
#include <benchmark/benchmark.h>

#include "api/flow.hpp"
#include "cnt/analyzer.hpp"
#include "layout/cells.hpp"
#include "sim/fo4.hpp"

namespace {

using namespace cnfet;

/// One characterization for all pipeline benches (seconds of transient
/// sims; must not run inside a timing loop).
api::LibraryHandle shared_library() {
  static const api::LibraryHandle lib =
      api::LibraryCache::global().get(layout::Tech::kCnfet65).value();
  return lib;
}

void BM_EulerPlanning(benchmark::State& state) {
  const auto& specs = layout::standard_cell_family();
  const auto& spec = specs[static_cast<std::size_t>(state.range(0))];
  const auto pdn = logic::parse_expr(spec.pdn_expr);
  const auto cell = netlist::build_static_cell(pdn);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        layout::plan_planes(cell, layout::LayoutStyle::kCompactEuler));
  }
  state.SetLabel(spec.name);
}
BENCHMARK(BM_EulerPlanning)->DenseRange(0, 11, 3);

void BM_CellBuild(benchmark::State& state) {
  const auto spec = layout::find_cell_spec("AOI22");
  for (auto _ : state) {
    benchmark::DoNotOptimize(layout::build_cell(spec));
  }
}
BENCHMARK(BM_CellBuild);

void BM_ExactImmunityProof(benchmark::State& state) {
  const auto built = layout::build_cell(layout::find_cell_spec("AOI31"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cnt::check_exact(built.layout, built.netlist, built.function));
  }
}
BENCHMARK(BM_ExactImmunityProof);

void BM_MonteCarloTubes(benchmark::State& state) {
  const auto built = layout::build_cell(layout::find_cell_spec("NAND3"));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cnt::monte_carlo(built.layout, built.netlist,
                                              built.function,
                                              cnt::TubeModel{}, 10, seed++));
  }
  state.SetItemsProcessed(state.iterations() * 10 * 24);  // tubes traced
}
BENCHMARK(BM_MonteCarloTubes);

void BM_TransientFo4(benchmark::State& state) {
  const auto inv = device::cnfet_inverter(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::measure_fo4(inv));
  }
}
BENCHMARK(BM_TransientFo4)->Unit(benchmark::kMillisecond);

void BM_SwitchLevelEvaluate(benchmark::State& state) {
  const auto cell = netlist::build_static_cell(logic::parse_expr("ABC+D"));
  std::uint64_t row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cell.evaluate(row++ & 15));
  }
}
BENCHMARK(BM_SwitchLevelEvaluate);

void BM_FlowMap(benchmark::State& state) {
  api::FlowOptions options;
  options.library = shared_library();
  const std::vector<std::string> inputs = {"A", "B", "C", "D"};
  std::vector<flow::OutputSpec> outputs;
  outputs.push_back({"f", logic::parse_expr("A*B+A*C+B*C"), false});
  outputs.push_back({"g", logic::parse_expr("(A+B)*(C+D)"), true});
  for (auto _ : state) {
    auto flow = api::Flow::from_expressions(outputs, inputs, options);
    benchmark::DoNotOptimize(flow.value().map());
  }
}
BENCHMARK(BM_FlowMap);

void BM_FlowPipelineToGds(benchmark::State& state) {
  api::FlowOptions options;
  options.library = shared_library();
  for (auto _ : state) {
    auto flow = api::Flow::from_cell("AOI22", options);
    benchmark::DoNotOptimize(flow.value().run());
  }
}
BENCHMARK(BM_FlowPipelineToGds)->Unit(benchmark::kMillisecond);

void BM_FlowPlaceScaling(benchmark::State& state) {
  // Pipeline cost (adopt + STA + placement) vs design size: an N-gate
  // NAND2 chain adopted at the Mapped stage.
  const auto library = shared_library();
  flow::GateNetlist chain;
  const int a = chain.add_net("A");
  const int b = chain.add_net("B");
  chain.mark_input(a);
  chain.mark_input(b);
  const auto& nand2 = library->find("NAND2_1X");
  int prev = b;
  for (int i = 0; i < state.range(0); ++i) {
    const int out = chain.add_net("n" + std::to_string(i));
    chain.add_gate(flow::Gate{&nand2, {a, prev}, out,
                              "g" + std::to_string(i)});
    prev = out;
  }
  chain.mark_output(prev);
  api::FlowOptions options;
  options.library = library;
  for (auto _ : state) {
    auto flow = api::Flow::from_netlist(chain, options);
    benchmark::DoNotOptimize(flow.value().run(api::Stage::kPlaced));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FlowPlaceScaling)->RangeMultiplier(4)->Range(4, 256)->Complexity();

}  // namespace

BENCHMARK_MAIN();
