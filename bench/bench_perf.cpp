// E8 — google-benchmark microbenchmarks of the kit's algorithms: Euler
// layout synthesis, exact immunity proof, Monte Carlo throughput, transient
// simulation, technology mapping, and placement scaling.
#include <benchmark/benchmark.h>

#include "cnt/analyzer.hpp"
#include "flow/mapper.hpp"
#include "flow/placer.hpp"
#include "layout/cells.hpp"
#include "sim/fo4.hpp"

namespace {

using namespace cnfet;

void BM_EulerPlanning(benchmark::State& state) {
  const auto& specs = layout::standard_cell_family();
  const auto& spec = specs[static_cast<std::size_t>(state.range(0))];
  const auto pdn = logic::parse_expr(spec.pdn_expr);
  const auto cell = netlist::build_static_cell(pdn);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        layout::plan_planes(cell, layout::LayoutStyle::kCompactEuler));
  }
  state.SetLabel(spec.name);
}
BENCHMARK(BM_EulerPlanning)->DenseRange(0, 11, 3);

void BM_CellBuild(benchmark::State& state) {
  const auto spec = layout::find_cell_spec("AOI22");
  for (auto _ : state) {
    benchmark::DoNotOptimize(layout::build_cell(spec));
  }
}
BENCHMARK(BM_CellBuild);

void BM_ExactImmunityProof(benchmark::State& state) {
  const auto built = layout::build_cell(layout::find_cell_spec("AOI31"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cnt::check_exact(built.layout, built.netlist, built.function));
  }
}
BENCHMARK(BM_ExactImmunityProof);

void BM_MonteCarloTubes(benchmark::State& state) {
  const auto built = layout::build_cell(layout::find_cell_spec("NAND3"));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cnt::monte_carlo(built.layout, built.netlist,
                                              built.function,
                                              cnt::TubeModel{}, 10, seed++));
  }
  state.SetItemsProcessed(state.iterations() * 10 * 24);  // tubes traced
}
BENCHMARK(BM_MonteCarloTubes);

void BM_TransientFo4(benchmark::State& state) {
  const auto inv = device::cnfet_inverter(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::measure_fo4(inv));
  }
}
BENCHMARK(BM_TransientFo4)->Unit(benchmark::kMillisecond);

void BM_SwitchLevelEvaluate(benchmark::State& state) {
  const auto cell = netlist::build_static_cell(logic::parse_expr("ABC+D"));
  std::uint64_t row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cell.evaluate(row++ & 15));
  }
}
BENCHMARK(BM_SwitchLevelEvaluate);

}  // namespace

BENCHMARK_MAIN();
