// E7 — ablations behind the paper's Section IV discussion:
//  (a) scheme-1 cell-height standardization loss vs scheme-2 natural
//      heights across synthetic cell mixes of increasing drive spread;
//  (b) the etched-fet-isolation upper bound vs etched-branch isolation vs
//      compact Euler (how much each idea buys);
//  (c) gate-overhang necessity: shrinking the overhang below the CNT-band
//      margin breaks immunity even for Euler layouts.
#include <cstdio>

#include "api/flow.hpp"
#include "cnt/analyzer.hpp"
#include "core/design_kit.hpp"
#include "util/table.hpp"

namespace {

using namespace cnfet;

flow::GateNetlist inverter_mix(const liberty::Library& lib,
                               const std::vector<double>& drives, int copies) {
  flow::GateNetlist nl;
  const int in = nl.add_net("in");
  nl.mark_input(in);
  int serial = 0;
  for (int c = 0; c < copies; ++c) {
    for (const double d : drives) {
      const auto& cell =
          lib.find("INV_" + std::to_string(static_cast<int>(d)) + "X");
      const int out = nl.add_net("n" + std::to_string(serial));
      nl.add_gate(flow::Gate{&cell, {in}, out, "inv" + std::to_string(serial)});
      ++serial;
    }
  }
  return nl;
}

/// Runs a netlist through the pipeline to Placed under one scheme. The
/// whole Flow is returned because the placement's instances point into the
/// flow-owned netlist.
api::Flow place_mix(const api::LibraryHandle& library,
                    const flow::GateNetlist& netlist,
                    layout::CellScheme scheme) {
  api::FlowOptions options;
  options.library = library;
  options.place.scheme = scheme;
  auto flow = api::Flow::from_netlist(netlist, options);
  (void)flow.value().run(api::Stage::kPlaced).value();
  return std::move(flow).value();
}

}  // namespace

int main() {
  std::printf("== E7 / ablations: schemes, isolation styles, overhang ==\n\n");
  const core::DesignKit kit;

  // (a) Height standardization loss.
  std::printf("(a) scheme-1 standardization loss vs scheme-2 packing\n");
  const auto lib_handle =
      api::LibraryCache::global().get(layout::Tech::kCnfet65).value();
  const auto& lib = *lib_handle;
  util::TextTable t({"cell mix", "scheme1 area", "scheme2 area",
                     "scheme2 gain", "scheme1 util", "scheme2 util"});
  const std::vector<std::pair<const char*, std::vector<double>>> mixes = {
      {"uniform 1X", {1.0}},
      {"1X..2X", {1.0, 2.0}},
      {"1X..4X", {1.0, 2.0, 4.0}},
      {"1X..9X", {1.0, 2.0, 4.0, 9.0}},
  };
  for (const auto& [name, drives] : mixes) {
    const auto nl = inverter_mix(lib, drives, 6);
    const auto f1 = place_mix(lib_handle, nl, layout::CellScheme::kScheme1);
    const auto f2 = place_mix(lib_handle, nl, layout::CellScheme::kScheme2);
    const auto& p1 = f1.placed()->placement;
    const auto& p2 = f2.placed()->placement;
    t.add_row({name, util::fmt_fixed(p1.placed_area_lambda2, 0),
               util::fmt_fixed(p2.placed_area_lambda2, 0),
               util::fmt_ratio(p1.placed_area_lambda2 /
                                   p2.placed_area_lambda2,
                               2),
               util::fmt_percent(p1.utilization(), 1),
               util::fmt_percent(p2.utilization(), 1)});
  }
  std::printf("%s\n", t.to_string().c_str());

  // (b) Isolation style ladder.
  std::printf("(b) PUN active area by isolation style (4 lambda)\n");
  util::TextTable lt({"cell", "etched-fets", "etched-branches[6]",
                      "compact-euler", "euler vs fets"});
  for (const char* name : {"NAND3", "AOI21", "AOI22", "AOI31"}) {
    const auto a = kit.cell(name, layout::LayoutStyle::kEtchedIsolatedFets)
                       .layout.pun()
                       .active_area_lambda2();
    const auto b =
        kit.cell(name, layout::LayoutStyle::kEtchedIsolatedBranches)
            .layout.pun()
            .active_area_lambda2();
    const auto c = kit.cell(name, layout::LayoutStyle::kCompactEuler)
                       .layout.pun()
                       .active_area_lambda2();
    lt.add_row({name, util::fmt_fixed(a, 0), util::fmt_fixed(b, 0),
                util::fmt_fixed(c, 0),
                util::fmt_percent((a - c) / a, 1)});
  }
  std::printf("%s\n", lt.to_string().c_str());

  // (c) Overhang necessity: the gate stripe must cover the whole CNT band
  // (strip + etch registration margin). Gate vertical extension beyond the
  // drawn strip is margin + overhang; once it shrinks below the margin the
  // band peeks out past the gate ends and tubes can slip around them.
  std::printf("(c) gate extension below the CNT-band margin breaks immunity\n");
  {
    const auto spec = layout::find_cell_spec("NAND3");
    const auto pdn_expr = logic::parse_expr(spec.pdn_expr);
    auto cell = netlist::build_static_cell(pdn_expr);
    const auto function = ~pdn_expr.truth(pdn_expr.num_vars());
    const auto plan =
        layout::plan_planes(cell, layout::LayoutStyle::kCompactEuler);
    for (const double overhang : {2.0, 0.0, -0.5, -1.0}) {
      auto rules = layout::DesignRules::cnfet65();
      rules.gate_overhang = overhang;
      const layout::CellLayout lay("NAND3", cell, plan, rules,
                                   layout::CellScheme::kScheme1);
      const auto report = cnt::check_exact(lay, cell, function);
      std::printf("  gate extension %.1fl vs margin %.1fl: %s\n",
                  rules.cnt_margin + overhang, rules.cnt_margin,
                  report.immune ? "immune" : "VULNERABLE");
    }
  }
  return 0;
}
