// E6 — headline numbers of the abstract/conclusions: the CNFET inverter at
// its optimal pitch vs the 65nm CMOS inverter — delay, energy, EDP, area,
// and the combined Energy-Delay-Area Product (EDAP).
#include <cstdio>

#include "device/models.hpp"
#include "layout/cells.hpp"
#include "sim/fo4.hpp"
#include "util/table.hpp"

int main() {
  using namespace cnfet;

  std::printf("== E6 / headline: inverter EDP and EDAP ==\n\n");

  const auto cmos = sim::measure_fo4(device::cmos_inverter());
  // Find the FO4-optimal tube count.
  double best = 1e9;
  int best_n = 1;
  for (int n = 1; n <= 22; ++n) {
    const auto r = sim::measure_fo4(device::cnfet_inverter(n));
    if (r.delay_s < best) {
      best = r.delay_s;
      best_n = n;
    }
  }
  const auto cnfet = sim::measure_fo4(device::cnfet_inverter(best_n));

  layout::CellBuildOptions copt;
  const auto lay_cn = layout::build_cell(layout::find_cell_spec("INV"), copt);
  copt.tech = layout::Tech::kCmos65;
  const auto lay_cm = layout::build_cell(layout::find_cell_spec("INV"), copt);

  const double dgain = cmos.delay_s / cnfet.delay_s;
  const double egain = cmos.energy_per_cycle_j / cnfet.energy_per_cycle_j;
  const double again = lay_cm.layout.core_area_lambda2() /
                       lay_cn.layout.core_area_lambda2();

  util::TextTable t({"metric", "CMOS", "CNFET(opt)", "gain", "paper"});
  t.add_row({"FO4 delay", util::fmt_si(cmos.delay_s, "s"),
             util::fmt_si(cnfet.delay_s, "s"), util::fmt_ratio(dgain, 2),
             ">4x"});
  t.add_row({"energy/cycle", util::fmt_si(cmos.energy_per_cycle_j, "J"),
             util::fmt_si(cnfet.energy_per_cycle_j, "J"),
             util::fmt_ratio(egain, 2), "2x"});
  t.add_row({"area (core l^2)",
             util::fmt_fixed(lay_cm.layout.core_area_lambda2(), 1),
             util::fmt_fixed(lay_cn.layout.core_area_lambda2(), 1),
             util::fmt_ratio(again, 2), ">1.4x (>30% saving)"});
  t.add_row({"EDP", "-", "-", util::fmt_ratio(dgain * egain, 1), ">10x"});
  t.add_row({"EDAP", "-", "-", util::fmt_ratio(dgain * egain * again, 1),
             "~12x"});
  std::printf("%s", t.to_string().c_str());
  return 0;
}
