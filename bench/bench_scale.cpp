// At-scale throughput bench over the src/gen/ netlist generators: runs
// generated designs from ~2k to 10k gates through the full pipeline and
// records gates/sec per stage, plus the 10k-gate incremental-vs-full
// timing ratio (the incremental graph's reason to exist at scale; gated
// at >= 10x by scripts/check_perf.py).
//
// Workloads:
//   * rca256  — 256-bit ripple-carry adder (2304 gates, 513 inputs: the
//     >64-input vector-simulate path)
//   * mul30   — 30x30 array multiplier (~10k gates, deep carry chains)
//   * rand10k — seeded 10k-gate random DAG (reconvergent, wide fanout)
//   * rand1k  — 1k-gate random DAG for the opt:: sizing/buffering pass
//   * rca64 via gen::to_expressions — the mapper DP at ~100k expr nodes
//
// Every design's reference netlist is checked against its independent
// oracle on sampled vectors, and the 10k flow must sign off DRC-clean;
// both booleans land in the "scale" section and are gated.
//
// Results merge into BENCH_perf.json as the "scale" section (same
// read-modify-write contract as bench_serve: existing sections are kept).
//
//   $ ./bench_scale           # a few seconds; updates ./BENCH_perf.json
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/flow.hpp"
#include "core/design_kit.hpp"
#include "gen/gen.hpp"
#include "opt/opt.hpp"
#include "sta/timing_graph.hpp"
#include "util/json.hpp"

namespace {

using namespace cnfet;
namespace json = util::json;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

template <typename Fn>
double best_ms(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const double elapsed = ms_since(start);
    if (elapsed < best) best = elapsed;
  }
  return best;
}

double gates_per_sec(std::size_t gates, double ms) {
  return ms > 0.0 ? static_cast<double>(gates) / (ms / 1000.0) : 0.0;
}

/// Sampled-vector check of a reference netlist against its oracle.
bool oracle_matches(const gen::Generated& design, int vectors) {
  const auto& netlist = design.netlist;
  for (const auto& vec :
       gen::sample_vectors(netlist.inputs().size(), vectors, 17)) {
    const auto values = netlist.simulate(vec);
    std::size_t po = 0;
    for (const int net : netlist.outputs()) {
      const bool expect = design.oracle(vec)[po++];
      if (values[static_cast<std::size_t>(net)] != expect) return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const core::DesignKit kit(layout::Tech::kCnfet65);
  const auto& library = kit.library();

  // --- generate the workload family ---------------------------------------
  auto make = [&](gen::Family family, int size, std::uint64_t seed) {
    gen::GenOptions options;
    options.family = family;
    if (family == gen::Family::kRandomDag) {
      options.target_gates = size;
      options.num_inputs = 64;
    } else {
      options.width = size;
    }
    options.seed = seed;
    return gen::generate(library, options);
  };

  const auto gen_start = std::chrono::steady_clock::now();
  const auto rca = make(gen::Family::kRippleCarryAdder, 256, 1);
  const auto mul = make(gen::Family::kArrayMultiplier, 30, 1);
  const auto rand10k = make(gen::Family::kRandomDag, 10000, 1);
  const auto rand1k = make(gen::Family::kRandomDag, 1000, 1);
  const double gen_ms = ms_since(gen_start);

  const bool oracle_identical = oracle_matches(rca, 16) &&
                                oracle_matches(mul, 16) &&
                                oracle_matches(rand10k, 8);
  std::printf("generated rca256=%zu mul30=%zu rand10k=%zu rand1k=%zu gates "
              "in %.1f ms | oracle identical: %s\n",
              rca.netlist.gates().size(), mul.netlist.gates().size(),
              rand10k.netlist.gates().size(), rand1k.netlist.gates().size(),
              gen_ms, oracle_identical ? "yes" : "NO");

  // --- mapper DP at scale: rca64 as one expression forest ------------------
  const auto rca64 = make(gen::Family::kRippleCarryAdder, 64, 1);
  const auto specs = gen::to_expressions(rca64.netlist);
  std::size_t expr_nodes = 0;
  for (const auto& spec : specs) {
    expr_nodes += static_cast<std::size_t>(spec.expr.num_nodes());
  }
  std::vector<std::string> input_names;
  for (const int pi : rca64.netlist.inputs()) {
    input_names.push_back(rca64.netlist.net_name(pi));
  }
  std::size_t mapped_gates = 0;
  const double map_ms = best_ms(3, [&] {
    const auto mapped = flow::map_expressions(specs, input_names, library);
    mapped_gates = mapped.netlist.gates().size();
  });
  std::printf("map rca64: %zu expr nodes -> %zu gates in %.1f ms "
              "(%.0f nodes/sec)\n",
              expr_nodes, mapped_gates, map_ms,
              gates_per_sec(expr_nodes, map_ms));

  // --- per-stage wall time of the 10k-gate flow ----------------------------
  const std::size_t n10k = rand10k.netlist.gates().size();
  auto made = api::Flow::from_netlist(rand10k.netlist);
  if (!made.ok()) {
    std::fprintf(stderr, "from_netlist failed: %s\n",
                 made.error().message.c_str());
    return 1;
  }
  auto& flow = made.value();
  auto staged = [&](util::Result<api::Stage> (api::Flow::*step)(),
                    const char* name) {
    const auto start = std::chrono::steady_clock::now();
    const auto reached = (flow.*step)();
    const double ms = ms_since(start);
    if (!reached.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", name,
                   reached.error().message.c_str());
      std::exit(1);
    }
    std::printf("stage %-10s %8.1f ms (%.0f gates/sec)\n", name, ms,
                gates_per_sec(n10k, ms));
    return ms;
  };
  const double sta_ms = staged(&api::Flow::time, "time");
  (void)staged(&api::Flow::optimize, "optimize");  // pass-through (off)
  const double place_ms = staged(&api::Flow::place, "place");
  const double signoff_ms = staged(&api::Flow::sign_off, "sign_off");
  const double export_ms = staged(&api::Flow::export_design, "export");
  const bool signoff_clean =
      flow.signed_off() != nullptr && flow.signed_off()->clean();
  std::printf("10k flow signoff clean: %s\n", signoff_clean ? "yes" : "NO");

  // --- opt:: passes at 1k gates (sharded sizing) ---------------------------
  const std::size_t n1k = rand1k.netlist.gates().size();
  opt::OptOptions oopt;
  oopt.num_threads = 0;  // one worker per hardware thread
  auto opt_netlist = rand1k.netlist;
  const auto opt_start = std::chrono::steady_clock::now();
  const auto stats = opt::optimize(opt_netlist, library, oopt);
  const double opt_ms = ms_since(opt_start);
  std::printf("optimize rand1k: %d edits in %.1f ms (%.0f gates/sec)\n",
              stats.edits(), opt_ms, gates_per_sec(n1k, opt_ms));

  // --- incremental vs full re-time at 10k gates ----------------------------
  flow::GateNetlist timed = rand10k.netlist;
  sta::TimingGraph graph(timed);
  (void)graph.worst_arrival();
  const int probe = static_cast<int>(timed.gates().size()) / 2;
  const auto drives = library.drives_of(liberty::Library::base_name(
      timed.gates()[static_cast<std::size_t>(probe)].cell->name));
  const double full_ms = best_ms(5, [&] {
    sta::TimingGraph rebuilt(timed);
    (void)rebuilt.worst_arrival();
  });
  std::size_t flip = 0;
  const double incremental_ms = best_ms(5, [&] {
    // Alternate the probe gate between two drives of its family; each rep
    // re-times only the affected cone.
    timed.resize_gate(probe, drives[flip++ % drives.size()].cell);
    graph.on_gate_replaced(probe);
    (void)graph.worst_arrival();
  });
  const double incremental_speedup =
      incremental_ms > 0.0 ? full_ms / incremental_ms : 0.0;
  const bool incremental_identical = graph.matches_full_rebuild();
  std::printf("timing 10k: full rebuild %.2f ms | incremental edit %.4f ms "
              "| speedup %.0fx | identical: %s\n",
              full_ms, incremental_ms, incremental_speedup,
              incremental_identical ? "yes" : "NO");

  // --- merge the "scale" section into BENCH_perf.json ----------------------
  const char* path = "BENCH_perf.json";
  json::Value root = json::Value::object();
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream text;
      text << in.rdbuf();
      try {
        root = json::parse(text.str());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "existing %s is unparseable (%s); rewriting\n",
                     path, e.what());
        root = json::Value::object();
      }
    }
  }
  json::Value scale = json::Value::object();
  scale.set("rca256_gates", static_cast<int>(rca.netlist.gates().size()));
  scale.set("mul30_gates", static_cast<int>(mul.netlist.gates().size()));
  scale.set("rand10k_gates", static_cast<int>(n10k));
  scale.set("generate_gates_per_sec",
            gates_per_sec(rca.netlist.gates().size() +
                              mul.netlist.gates().size() + n10k + n1k,
                          gen_ms));
  scale.set("map_expr_nodes", static_cast<int>(expr_nodes));
  scale.set("map_nodes_per_sec", gates_per_sec(expr_nodes, map_ms));
  scale.set("time_10k_gates_per_sec", gates_per_sec(n10k, sta_ms));
  scale.set("place_10k_gates_per_sec", gates_per_sec(n10k, place_ms));
  scale.set("signoff_10k_gates_per_sec", gates_per_sec(n10k, signoff_ms));
  scale.set("export_10k_gates_per_sec", gates_per_sec(n10k, export_ms));
  scale.set("opt_1k_gates_per_sec", gates_per_sec(n1k, opt_ms));
  scale.set("incremental_timing_speedup_10k", incremental_speedup);
  scale.set("incremental_identical", incremental_identical);
  scale.set("oracle_identical", oracle_identical);
  scale.set("signoff_clean", signoff_clean);
  root.set("scale", std::move(scale));
  {
    std::ofstream out(path, std::ios::trunc);
    out << json::dump(root, 2) << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return 1;
    }
  }
  std::printf("\nmerged \"scale\" into %s\n", path);

  if (!oracle_identical || !signoff_clean || !incremental_identical) {
    std::fprintf(stderr,
                 "scale bench equivalence failure (oracle %d, signoff %d, "
                 "incremental %d)\n",
                 oracle_identical ? 1 : 0, signoff_clean ? 1 : 0,
                 incremental_identical ? 1 : 0);
    return 1;
  }
  return 0;
}
