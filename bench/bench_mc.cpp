// Monte Carlo tracer bench: the tentpole numbers for the spatially
// indexed CNT tracer, at three granularities:
//
//  * full pipeline — monte_carlo trials/sec at 10k/100k (1 thread) and
//    1M (hardware threads) on tier-1 cells (NAND3, AOI22), indexed vs
//    the naive all-pairs reference tracer;
//  * tracer stage — warm ns/tube through each tracer over the exact
//    tube population the model samples, isolating the indexed win from
//    pipeline costs both tracers share (tube sampling, functional
//    check). Tier-1 geometries are tiny (2 bands, ~a dozen shapes), so
//    the all-pairs scan is already cheap there and the honest stage
//    speedup is a handful of x;
//  * dense geometry — the same tracer A/B on a synthetic 16-band,
//    1024-shape geometry, where the all-pairs scan pays its O(shapes)
//    cost and the index's O(log + candidates) query is ≥10x faster.
//    This is the regime the index exists for (multi-strip cells and
//    cell arrays), scaled so the asymptotics are visible today.
//
// Identity gates, either failing is a hard (nonzero-exit) failure here
// and in scripts/check_perf.py:
//
//  * indexed ≡ naive — full MonteCarloResult (tallies AND per-trial
//    histograms) at 10k and 100k trials, plus per-tube effect-list
//    equality over every benchmark tube population (tier-1 and dense);
//  * thread-count invariance — the indexed result at 1 thread vs
//    hardware threads, full comparison, at 100k trials.
//
// Results merge into BENCH_perf.json as the "mc" section (same
// read-modify-write contract as bench_serve/bench_scaling: existing
// sections are kept; only bench_perf truncates the file).
//
//   $ ./bench_mc              # ~a minute; updates ./BENCH_perf.json
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cnt/analyzer.hpp"
#include "layout/cells.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace cnfet;
namespace json = util::json;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Full-result bitwise comparison: every tally and every histogram bucket.
bool results_identical(const cnt::MonteCarloResult& a,
                       const cnt::MonteCarloResult& b) {
  return a.trials == b.trials && a.failing_trials == b.failing_trials &&
         a.tubes_sampled == b.tubes_sampled &&
         a.stray_shorts == b.stray_shorts &&
         a.stray_chains == b.stray_chains &&
         a.shorts_histogram == b.shorts_histogram &&
         a.chains_histogram == b.chains_histogram;
}

bool effects_identical(const std::vector<cnt::StrayEffect>& a,
                       const std::vector<cnt::StrayEffect>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].a != b[i].a || a[i].b != b[i].b) return false;
    if (a[i].chain.size() != b[i].chain.size()) return false;
    for (std::size_t j = 0; j < a[i].chain.size(); ++j) {
      if (a[i].chain[j].gate_input != b[i].chain[j].gate_input ||
          a[i].chain[j].type != b[i].chain[j].type) {
        return false;
      }
    }
  }
  return true;
}

/// Tube population matching cnt::monte_carlo's sampling model (same
/// distributions; the draws need not be stream-identical — this only
/// shapes the benchmark population), stored flat: 3 points per tube.
std::vector<geom::DVec2> sample_tubes(const geom::Rect& box,
                                      const cnt::TubeModel& model,
                                      int count, std::uint64_t seed) {
  constexpr double kPi = 3.14159265358979323846;
  const double diag = model.mean_length_lambda * geom::kLambda;
  std::vector<geom::DVec2> flat;
  flat.reserve(static_cast<std::size_t>(count) * 3);
  util::Xoshiro256 rng(util::derive_stream(seed, 0));
  for (int i = 0; i < count; ++i) {
    const geom::DVec2 center{
        rng.uniform(static_cast<double>(box.lo().x) - diag,
                    static_cast<double>(box.hi().x) + diag),
        rng.uniform(static_cast<double>(box.lo().y) - diag,
                    static_cast<double>(box.hi().y) + diag)};
    const double angle =
        rng.uniform() < model.outlier_fraction
            ? rng.uniform(-kPi / 2, kPi / 2)
            : rng.normal(0.0, model.angle_sigma_deg * kPi / 180.0);
    const double len = std::exp(rng.normal(
                           std::log(model.mean_length_lambda),
                           model.length_sigma)) *
                       geom::kLambda;
    const double bend = rng.normal(0.0, model.bend_sigma_deg * kPi / 180.0);
    const geom::DVec2 dir1{std::cos(angle), std::sin(angle)};
    const geom::DVec2 dir2{std::cos(angle + bend), std::sin(angle + bend)};
    flat.push_back(center - dir1 * (len / 2));
    flat.push_back(center);
    flat.push_back(center + dir2 * (len / 2));
  }
  return flat;
}

struct TracerAb {
  double naive_ns_per_tube = 0.0;
  double indexed_ns_per_tube = 0.0;
  bool identical = true;

  [[nodiscard]] double speedup() const {
    return indexed_ns_per_tube > 0.0 ? naive_ns_per_tube / indexed_ns_per_tube
                                     : 0.0;
  }
};

/// Warm tracer-stage A/B over a flat tube population: per-tube effect
/// equality first (the identity gate), then timed passes with warm
/// scratch — exactly how monte_carlo drives the tracer.
TracerAb tracer_ab(const layout::CellGeometry& geometry,
                   const cnt::GeometryIndex& index,
                   const std::vector<geom::DVec2>& flat) {
  const std::size_t n = flat.size() / 3;
  util::Arena arena;
  std::vector<cnt::StrayEffect> naive_fx, indexed_fx;
  std::vector<geom::DVec2> poly(3);
  TracerAb ab;

  for (std::size_t i = 0; i < n; ++i) {
    poly[0] = flat[3 * i];
    poly[1] = flat[3 * i + 1];
    poly[2] = flat[3 * i + 2];
    naive_fx.clear();
    cnt::trace_tube_into(geometry, poly, arena, naive_fx);
    indexed_fx.clear();
    cnt::trace_tube_into(index, poly, arena, indexed_fx);
    if (!effects_identical(naive_fx, indexed_fx)) {
      ab.identical = false;
      return ab;
    }
  }

  const auto time_pass = [&](auto&& trace) {
    // One warm-up pass, then the timed pass.
    for (int round = 0; round < 2; ++round) {
      naive_fx.clear();
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < n; ++i) {
        poly[0] = flat[3 * i];
        poly[1] = flat[3 * i + 1];
        poly[2] = flat[3 * i + 2];
        trace(poly);
      }
      if (round == 1) return ms_since(start) * 1e6 / static_cast<double>(n);
    }
    return 0.0;
  };
  ab.naive_ns_per_tube = time_pass([&](const std::vector<geom::DVec2>& p) {
    cnt::trace_tube_into(geometry, p, arena, naive_fx);
  });
  ab.indexed_ns_per_tube = time_pass([&](const std::vector<geom::DVec2>& p) {
    cnt::trace_tube_into(index, p, arena, naive_fx);
  });
  return ab;
}

struct CellRun {
  double naive_100k_ms = 0.0;
  double indexed_10k_ms = 0.0;
  double indexed_100k_ms = 0.0;
  double indexed_1m_ms = 0.0;  ///< at hardware threads
  TracerAb tracer;
  bool indexed_eq_naive = true;
  bool thread_invariant = true;

  [[nodiscard]] double speedup_100k() const {
    return indexed_100k_ms > 0.0 ? naive_100k_ms / indexed_100k_ms : 0.0;
  }
  [[nodiscard]] double indexed_100k_trials_per_sec() const {
    return indexed_100k_ms > 0.0 ? 100'000 / (indexed_100k_ms / 1000.0) : 0.0;
  }
  [[nodiscard]] double indexed_1m_trials_per_sec() const {
    return indexed_1m_ms > 0.0 ? 1'000'000 / (indexed_1m_ms / 1000.0) : 0.0;
  }
};

CellRun run_cell(const std::string& name, int hardware) {
  constexpr std::uint64_t kSeed = 7;
  const auto built = layout::build_cell(layout::find_cell_spec(name));
  const auto mc = [&](int trials, int threads, cnt::TracerKind tracer,
                      cnt::MonteCarloResult* out) {
    const auto start = std::chrono::steady_clock::now();
    auto result =
        cnt::monte_carlo(built.layout, built.netlist, built.function,
                         cnt::TubeModel{}, trials, kSeed, threads, tracer);
    const double elapsed = ms_since(start);
    if (out != nullptr) *out = std::move(result);
    return elapsed;
  };

  CellRun run;
  cnt::MonteCarloResult naive_10k, naive_100k, indexed_10k, indexed_100k,
      indexed_100k_mt;
  (void)mc(10'000, 1, cnt::TracerKind::kNaive, &naive_10k);
  run.naive_100k_ms = mc(100'000, 1, cnt::TracerKind::kNaive, &naive_100k);
  run.indexed_10k_ms = mc(10'000, 1, cnt::TracerKind::kIndexed, &indexed_10k);
  run.indexed_100k_ms =
      mc(100'000, 1, cnt::TracerKind::kIndexed, &indexed_100k);
  run.indexed_1m_ms =
      mc(1'000'000, hardware, cnt::TracerKind::kIndexed, nullptr);
  (void)mc(100'000, hardware, cnt::TracerKind::kIndexed, &indexed_100k_mt);

  run.indexed_eq_naive = results_identical(indexed_10k, naive_10k) &&
                         results_identical(indexed_100k, naive_100k);
  run.thread_invariant = results_identical(indexed_100k, indexed_100k_mt);

  const cnt::GeometryIndex index(built.layout.geometry());
  const auto tubes =
      sample_tubes(built.layout.bbox(), cnt::TubeModel{}, 200'000, kSeed);
  run.tracer = tracer_ab(built.layout.geometry(), index, tubes);

  std::printf("%-8s | naive 100k %8.1f ms | indexed 100k %8.1f ms "
              "(%4.1fx, %8.0f trials/s) | 1M @ t%d %8.1f ms | tracer "
              "%5.1f -> %5.1f ns/tube (%4.1fx) | eq %s | threads %s\n",
              name.c_str(), run.naive_100k_ms, run.indexed_100k_ms,
              run.speedup_100k(), run.indexed_100k_trials_per_sec(), hardware,
              run.indexed_1m_ms, run.tracer.naive_ns_per_tube,
              run.tracer.indexed_ns_per_tube, run.tracer.speedup(),
              run.indexed_eq_naive && run.tracer.identical ? "yes" : "NO",
              run.thread_invariant ? "yes" : "NO");
  return run;
}

/// Synthetic 16-band geometry with 64 contacts and 64 gates per band:
/// the multi-strip regime the index targets. Nets and inputs are
/// arbitrary ids — the tracer only copies them into events.
layout::CellGeometry dense_geometry() {
  layout::CellGeometry geo;
  constexpr int kBands = 16;
  constexpr int kPerBand = 64;
  constexpr geom::Coord kPitchX = 2000;
  constexpr geom::Coord kPitchY = 2400;
  constexpr geom::Coord kBandH = 800;
  constexpr geom::Coord kWidth = kPerBand * kPitchX;
  for (int b = 0; b < kBands; ++b) {
    const geom::Coord y0 = b * kPitchY;
    geo.bands.push_back({geom::Rect({0, y0}, {kWidth, y0 + kBandH}),
                         b % 2 == 0 ? netlist::FetType::kN
                                    : netlist::FetType::kP});
    for (int j = 0; j < kPerBand; ++j) {
      const geom::Coord x0 = j * kPitchX;
      // Contact then gate within each pitch, both spanning the band.
      geo.contacts.push_back(
          {static_cast<netlist::NetId>(j % 6),
           geom::Rect({x0, y0 - 100}, {x0 + 400, y0 + kBandH + 100})});
      geo.gates.push_back(
          {j % 4, geom::Rect({x0 + 1000, y0 - 100},
                             {x0 + 1400, y0 + kBandH + 100})});
    }
  }
  return geo;
}

json::Value tracer_json(const TracerAb& ab) {
  json::Value v = json::Value::object();
  v.set("naive_ns_per_tube", ab.naive_ns_per_tube);
  v.set("indexed_ns_per_tube", ab.indexed_ns_per_tube);
  v.set("speedup", ab.speedup());
  v.set("identical", ab.identical);
  return v;
}

json::Value cell_json(const CellRun& run) {
  json::Value v = json::Value::object();
  v.set("naive_100k_ms", run.naive_100k_ms);
  v.set("indexed_10k_ms", run.indexed_10k_ms);
  v.set("indexed_100k_ms", run.indexed_100k_ms);
  v.set("indexed_1m_ms", run.indexed_1m_ms);
  v.set("speedup_100k", run.speedup_100k());
  v.set("indexed_100k_trials_per_sec", run.indexed_100k_trials_per_sec());
  v.set("indexed_1m_trials_per_sec", run.indexed_1m_trials_per_sec());
  v.set("tracer", tracer_json(run.tracer));
  v.set("indexed_eq_naive", run.indexed_eq_naive);
  v.set("thread_invariant", run.thread_invariant);
  return v;
}

}  // namespace

int main() {
  const int hardware = util::hardware_threads();
  std::printf("== mc: indexed tracer vs naive reference "
              "(hardware threads: %d) ==\n\n",
              hardware);

  const CellRun nand3 = run_cell("NAND3", hardware);
  const CellRun aoi22 = run_cell("AOI22", hardware);

  // Dense-geometry tracer A/B: where the all-pairs scan pays O(shapes).
  const auto dense = dense_geometry();
  const cnt::GeometryIndex dense_index(dense);
  geom::Rect dense_box = dense.bands.front().rect;
  for (const auto& band : dense.bands) {
    dense_box = geom::Rect(
        {std::min(dense_box.lo().x, band.rect.lo().x),
         std::min(dense_box.lo().y, band.rect.lo().y)},
        {std::max(dense_box.hi().x, band.rect.hi().x),
         std::max(dense_box.hi().y, band.rect.hi().y)});
  }
  const auto dense_tubes = sample_tubes(dense_box, cnt::TubeModel{}, 20'000, 7);
  const TracerAb dense_ab = tracer_ab(dense, dense_index, dense_tubes);
  std::printf("dense    | %zu bands, %zu contacts, %zu gates | tracer "
              "%7.1f -> %5.1f ns/tube (%4.1fx) | eq %s\n",
              dense.bands.size(), dense.contacts.size(), dense.gates.size(),
              dense_ab.naive_ns_per_tube, dense_ab.indexed_ns_per_tube,
              dense_ab.speedup(), dense_ab.identical ? "yes" : "NO");

  const double min_speedup =
      std::min(nand3.speedup_100k(), aoi22.speedup_100k());
  const double min_tracer_speedup =
      std::min(nand3.tracer.speedup(), aoi22.tracer.speedup());
  const double min_rate_100k = std::min(nand3.indexed_100k_trials_per_sec(),
                                        aoi22.indexed_100k_trials_per_sec());
  const double min_rate_1m = std::min(nand3.indexed_1m_trials_per_sec(),
                                      aoi22.indexed_1m_trials_per_sec());
  const bool identical = nand3.indexed_eq_naive && aoi22.indexed_eq_naive &&
                         nand3.tracer.identical && aoi22.tracer.identical &&
                         dense_ab.identical;
  const bool invariant = nand3.thread_invariant && aoi22.thread_invariant;

  // --- merge the "mc" section into BENCH_perf.json --------------------------
  const char* path = "BENCH_perf.json";
  json::Value root = json::Value::object();
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream text;
      text << in.rdbuf();
      try {
        root = json::parse(text.str());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "existing %s is unparseable (%s); rewriting\n",
                     path, e.what());
        root = json::Value::object();
      }
    }
  }
  json::Value mc = json::Value::object();
  mc.set("hardware_threads", hardware);
  mc.set("nand3", cell_json(nand3));
  mc.set("aoi22", cell_json(aoi22));
  mc.set("dense", tracer_json(dense_ab));
  mc.set("min_speedup_100k", min_speedup);
  mc.set("min_tracer_speedup", min_tracer_speedup);
  mc.set("dense_tracer_speedup", dense_ab.speedup());
  mc.set("min_indexed_100k_trials_per_sec", min_rate_100k);
  mc.set("min_indexed_1m_trials_per_sec", min_rate_1m);
  mc.set("indexed_eq_naive", identical);
  mc.set("thread_invariant", invariant);
  root.set("mc", std::move(mc));
  {
    std::ofstream out(path, std::ios::trunc);
    out << json::dump(root, 2) << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return 1;
    }
  }
  std::printf("\nmerged \"mc\" into %s\n", path);

  if (!identical || !invariant) {
    std::fprintf(stderr,
                 "mc bench hard failure (indexed_eq_naive %d, "
                 "thread_invariant %d)\n",
                 identical ? 1 : 0, invariant ? 1 : 0);
    return 1;
  }
  return 0;
}
