// Multicore-scaling bench: speedup-vs-threads ladders (1/2/4/N) for the
// four parallel subsystems — cold library characterization, Monte Carlo
// mispositioning trials, api::run_batch job fan-out, and the sharded
// 10k-gate sizing sweep — plus the steady-state allocation counter over
// a warm characterization arc (the zero-allocation contract, measured
// with the counting operator new when the build has it).
//
// Every ladder rung is checked bit-identical to the single-thread run;
// that and allocs-per-arc == 0 are hard failures here. The speedup
// floors themselves are machine-dependent and are gated by
// scripts/check_perf.py, which skips them on hosts with fewer than 4
// hardware threads.
//
// Results merge into BENCH_perf.json as the "scaling" section (same
// read-modify-write contract as bench_serve/bench_scale: existing
// sections are kept).
//
//   $ ./bench_scaling         # a few seconds; updates ./BENCH_perf.json
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/batch.hpp"
#include "cnt/analyzer.hpp"
#include "gen/gen.hpp"
#include "layout/cells.hpp"
#include "liberty/library.hpp"
#include "opt/opt.hpp"
#include "sta/timing_graph.hpp"
#include "util/heap_count.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"

namespace {

using namespace cnfet;
namespace json = util::json;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

template <typename Fn>
double best_ms(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const double elapsed = ms_since(start);
    if (elapsed < best) best = elapsed;
  }
  return best;
}

/// One subsystem's ladder: wall ms per thread count, all rungs checked
/// bit-identical to the t=1 run.
struct Ladder {
  std::vector<int> threads;
  std::vector<double> ms;
  bool identical = true;

  [[nodiscard]] double ms_at(int t) const {
    for (std::size_t i = 0; i < threads.size(); ++i) {
      if (threads[i] == t) return ms[i];
    }
    return 0.0;
  }
  [[nodiscard]] double speedup_at(int t) const {
    const double base = ms_at(1);
    const double here = ms_at(t);
    return here > 0.0 ? base / here : 0.0;
  }
};

void print_ladder(const char* name, const Ladder& ladder) {
  std::printf("%-16s", name);
  for (std::size_t i = 0; i < ladder.threads.size(); ++i) {
    std::printf(" | t%-2d %8.1f ms (%.2fx)", ladder.threads[i], ladder.ms[i],
                ladder.speedup_at(ladder.threads[i]));
  }
  std::printf(" | identical: %s\n", ladder.identical ? "yes" : "NO");
}

json::Value ladder_json(const Ladder& ladder) {
  json::Value section = json::Value::object();
  for (std::size_t i = 0; i < ladder.threads.size(); ++i) {
    const std::string t = "t" + std::to_string(ladder.threads[i]);
    section.set(t + "_ms", ladder.ms[i]);
    if (ladder.threads[i] != 1) {
      section.set("speedup_" + t, ladder.speedup_at(ladder.threads[i]));
    }
  }
  section.set("identical", ladder.identical);
  return section;
}

/// NLDM tables of two libraries, compared bitwise.
bool libraries_identical(const liberty::Library& a,
                         const liberty::Library& b) {
  if (a.cells().size() != b.cells().size()) return false;
  for (std::size_t c = 0; c < a.cells().size(); ++c) {
    const auto& ca = a.cells()[c];
    const auto& cb = b.cells()[c];
    if (ca.name != cb.name || ca.arcs.size() != cb.arcs.size()) return false;
    for (std::size_t arc = 0; arc < ca.arcs.size(); ++arc) {
      const auto& slews = ca.arcs[arc].delay.slews();
      const auto& loads = ca.arcs[arc].delay.loads();
      for (std::size_t si = 0; si < slews.size(); ++si) {
        for (std::size_t li = 0; li < loads.size(); ++li) {
          if (ca.arcs[arc].delay.at(si, li) != cb.arcs[arc].delay.at(si, li) ||
              ca.arcs[arc].out_slew.at(si, li) !=
                  cb.arcs[arc].out_slew.at(si, li) ||
              ca.arcs[arc].energy.at(si, li) !=
                  cb.arcs[arc].energy.at(si, li)) {
            return false;
          }
        }
      }
    }
  }
  return true;
}

}  // namespace

int main() {
  const int hardware = util::hardware_threads();
  std::vector<int> ladder_threads = {1, 2, 4};
  if (hardware > 4) ladder_threads.push_back(hardware);
  std::printf("== scaling: speedup vs threads (hardware threads: %d) ==\n\n",
              hardware);

  // --- cold characterization ladder ---------------------------------------
  liberty::CharacterizeOptions fast;
  fast.transient.tstep = 0.25e-12;
  fast.transient.tstop = 400e-12;
  Ladder char_ladder;
  liberty::Library lib_t1;
  for (const int t : ladder_threads) {
    auto options = fast;
    options.num_threads = t;
    liberty::Library lib;
    char_ladder.threads.push_back(t);
    char_ladder.ms.push_back(
        best_ms(1, [&] { lib = liberty::build_library(options); }));
    if (t == 1) {
      lib_t1 = std::move(lib);
    } else {
      char_ladder.identical =
          char_ladder.identical && libraries_identical(lib_t1, lib);
    }
  }
  print_ladder("characterize", char_ladder);

  // --- Monte Carlo ladder --------------------------------------------------
  constexpr int kTrials = 4000;
  constexpr std::uint64_t kSeed = 42;
  const auto nand3 = layout::build_cell(layout::find_cell_spec("NAND3"));
  Ladder mc_ladder;
  cnt::MonteCarloResult mc_t1;
  for (const int t : ladder_threads) {
    cnt::MonteCarloResult result;
    mc_ladder.threads.push_back(t);
    mc_ladder.ms.push_back(best_ms(2, [&] {
      result = cnt::monte_carlo(nand3.layout, nand3.netlist, nand3.function,
                                cnt::TubeModel{}, kTrials, kSeed, t);
    }));
    if (t == 1) {
      mc_t1 = result;
    } else {
      mc_ladder.identical =
          mc_ladder.identical &&
          result.failing_trials == mc_t1.failing_trials &&
          result.tubes_sampled == mc_t1.tubes_sampled &&
          result.stray_shorts == mc_t1.stray_shorts &&
          result.stray_chains == mc_t1.stray_chains;
    }
  }
  print_ladder("monte_carlo", mc_ladder);

  // --- run_batch ladder ----------------------------------------------------
  // Warm the per-tech caches first so the ladder times the pipeline fan-out,
  // not one-time characterization.
  (void)api::LibraryCache::global().get(layout::Tech::kCnfet65);
  (void)api::LibraryCache::global().get(layout::Tech::kCmos65);
  const auto family =
      api::family_jobs({layout::Tech::kCnfet65, layout::Tech::kCmos65});
  std::vector<api::FlowJob> jobs;
  for (int rep = 0; rep < 20; ++rep) {
    jobs.insert(jobs.end(), family.begin(), family.end());
  }
  Ladder batch_ladder;
  std::string batch_t1;
  for (const int t : ladder_threads) {
    api::BatchOptions options;
    options.num_threads = t;
    std::string rendered;
    batch_ladder.threads.push_back(t);
    batch_ladder.ms.push_back(best_ms(2, [&] {
      const auto report = api::run_batch(jobs, options);
      rendered = report.to_string() + report.merged_diagnostics().to_string();
    }));
    if (t == 1) {
      batch_t1 = rendered;
    } else {
      batch_ladder.identical =
          batch_ladder.identical && rendered == batch_t1;
    }
  }
  print_ladder("run_batch", batch_ladder);

  // --- 10k-gate sizing ladder ----------------------------------------------
  gen::GenOptions gen_options;
  gen_options.family = gen::Family::kRandomDag;
  gen_options.target_gates = 10000;
  gen_options.num_inputs = 64;
  gen_options.seed = 1;
  const auto rand10k = gen::generate(lib_t1, gen_options);
  const std::size_t n10k = rand10k.netlist.gates().size();
  constexpr int kSizingRounds = 6;
  Ladder opt_ladder;
  std::string opt_t1;
  for (const int t : ladder_threads) {
    auto netlist = rand10k.netlist;
    sta::TimingGraph graph(netlist);
    (void)graph.worst_arrival();
    opt::OptOptions options;
    options.num_threads = t;
    options.max_sizing_rounds = kSizingRounds;
    opt::PassStats stats;
    const double budget = opt::total_area(netlist) * 1.25;
    const auto start = std::chrono::steady_clock::now();
    opt::size_gates(netlist, graph, lib_t1, options, budget, &stats);
    opt_ladder.threads.push_back(t);
    opt_ladder.ms.push_back(ms_since(start));
    // Identity = the resized netlist (every gate's cell) plus the worst
    // arrival, both bitwise.
    std::ostringstream state;
    for (const auto& gate : netlist.gates()) state << gate.cell->name << ",";
    state.precision(17);
    state << graph.worst_arrival();
    if (t == 1) {
      opt_t1 = state.str();
    } else {
      opt_ladder.identical = opt_ladder.identical && state.str() == opt_t1;
    }
  }
  print_ladder("opt_sizing_10k", opt_ladder);

  // --- steady-state allocations per warm characterization arc --------------
  const bool counting = util::heap_counting_enabled();
  double allocs_per_arc = 0.0;
  {
    const auto nand2 = layout::build_cell(layout::find_cell_spec("NAND2"));
    liberty::ArcScratch scratch;
    scratch.bind(nand2.netlist, fast);
    auto arc = [&] {
      return liberty::measure_arc(nand2.netlist, 0, 0b10, true, 20e-12,
                                  6e-15, fast, &scratch);
    };
    (void)arc();  // warm the scratch to steady-state capacity
    constexpr int kArcs = 16;
    const std::uint64_t before = util::heap_allocs_this_thread();
    for (int i = 0; i < kArcs; ++i) (void)arc();
    const std::uint64_t after = util::heap_allocs_this_thread();
    allocs_per_arc = static_cast<double>(after - before) / kArcs;
  }
  std::printf("allocs/arc       %.2f (counting %s)\n", allocs_per_arc,
              counting ? "on" : "off");

  // --- merge the "scaling" section into BENCH_perf.json --------------------
  const char* path = "BENCH_perf.json";
  json::Value root = json::Value::object();
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream text;
      text << in.rdbuf();
      try {
        root = json::parse(text.str());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "existing %s is unparseable (%s); rewriting\n",
                     path, e.what());
        root = json::Value::object();
      }
    }
  }
  json::Value scaling = json::Value::object();
  scaling.set("hardware_threads", hardware);
  scaling.set("alloc_counting", counting);
  scaling.set("allocs_per_arc", allocs_per_arc);
  scaling.set("characterization", ladder_json(char_ladder));
  scaling.set("monte_carlo", ladder_json(mc_ladder));
  scaling.set("run_batch", ladder_json(batch_ladder));
  json::Value opt_section = ladder_json(opt_ladder);
  opt_section.set("gates", static_cast<int>(n10k));
  opt_section.set("rounds", kSizingRounds);
  scaling.set("opt_sizing", std::move(opt_section));
  root.set("scaling", std::move(scaling));
  {
    std::ofstream out(path, std::ios::trunc);
    out << json::dump(root, 2) << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return 1;
    }
  }
  std::printf("\nmerged \"scaling\" into %s\n", path);

  const bool all_identical = char_ladder.identical && mc_ladder.identical &&
                             batch_ladder.identical && opt_ladder.identical;
  const bool allocs_ok = !counting || allocs_per_arc == 0.0;
  if (!all_identical || !allocs_ok) {
    std::fprintf(stderr,
                 "scaling bench hard failure (identical: char %d mc %d "
                 "batch %d opt %d; allocs/arc %.2f)\n",
                 char_ladder.identical ? 1 : 0, mc_ladder.identical ? 1 : 0,
                 batch_ladder.identical ? 1 : 0, opt_ladder.identical ? 1 : 0,
                 allocs_per_arc);
    return 1;
  }
  return 0;
}
